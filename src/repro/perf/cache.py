"""Persistent, content-addressed cache of deterministic simulation results.

The timing simulator is a pure function of its inputs: the encoded program
bytes, the :class:`~repro.arch.turing.GpuSpec` architectural constants, the
CTA count and the simulator's own behaviour (versioned by
:data:`SIM_VERSION`).  The identical (spec, config) profiles were being
re-simulated dozens of times across the test suite and benchmarks; this
module makes every result reusable across *all* ``PerformanceModel``
instances, benchmark files and repeated CLI runs.

Two layers:

* an **in-process dict** on each :class:`ResultCache` (the module singleton
  :data:`PROFILE_CACHE` is shared by everything in one interpreter);
* an **on-disk JSON store**, one file per key, under ``$REPRO_CACHE_DIR``
  (default ``~/.cache/repro-sim``).  Set ``REPRO_NO_CACHE=1`` to disable
  both layers (every lookup misses, nothing is written).

Keys are SHA-256 hexdigests built by :func:`content_key` over
length-framed, canonically-serialised parts, so distinct inputs can never
collide by concatenation.  Values are JSON-serialisable dicts (profile /
timing-run summaries).  **Invariant:** caching never changes reported
numbers -- a hit returns exactly the summary the simulator produced when
the entry was stored, and :data:`SIM_VERSION` must be bumped whenever the
timing model's behaviour changes.

**Integrity.**  Disk entries are envelopes
``{"schema", "sim_version", "sha256", "payload"}``: the payload checksum,
the writing simulator's version and the envelope schema are all verified
on read.  Any failure -- truncated JSON, a foreign schema, a checksum
mismatch, a stale ``SIM_VERSION`` -- is treated as a miss, the file is
quarantined into ``<subdir>/quarantine/`` for post-mortem, and
``cache.integrity_fails`` counts it.  A corrupt disk can therefore cost
re-simulation but can never surface a wrong number.

**Hygiene.**  With ``REPRO_CACHE_MAX_MB`` set, every disk store runs a
size-bounded LRU sweep: reads touch entry mtimes, eviction unlinks oldest
mtime first (``cache.evictions``), and stale ``*.tmp`` spill from
interrupted writes is removed along the way (and unconditionally by
``clear(disk=True)``).  The in-process layer is LRU-bounded too
(``REPRO_CACHE_MEM_ENTRIES`` entries, default 4096;
``cache.mem_evictions``): a long-running process -- the ``repro serve``
daemon in particular -- keeps its hot set resident and re-reads colder
entries from disk instead of growing without limit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from dataclasses import asdict, is_dataclass
from pathlib import Path

from ..robust import chaos
from .stats import STATS

__all__ = [
    "SIM_VERSION",
    "SCHEMA_VERSION",
    "cache_enabled",
    "cache_dir",
    "cache_max_bytes",
    "cache_mem_entries",
    "content_key",
    "ResultCache",
    "PROFILE_CACHE",
]

#: Behavioural version of the timing simulator.  Bump this whenever a
#: change alters simulated cycle counts, so stale disk entries are never
#: returned for the new behaviour.
SIM_VERSION = "timing-v2"  # v2: arch-family specs enter every key

#: On-disk envelope schema.  Bump when the envelope layout itself changes;
#: pre-envelope (or foreign) files then read as integrity misses.
SCHEMA_VERSION = 1

#: ``*.tmp`` spill older than this is swept by the eviction pass (a live
#: ``put`` holds its tmp file for milliseconds; an hour is safely stale).
_TMP_MAX_AGE_S = 3600.0

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_OFF = "REPRO_NO_CACHE"
_ENV_MAX_MB = "REPRO_CACHE_MAX_MB"
_ENV_MEM_MAX = "REPRO_CACHE_MEM_ENTRIES"

#: Default bound on the in-process layer (entries, not bytes: profile
#: payloads are small dicts, so 4096 entries is a few MB at most).
_MEM_MAX_DEFAULT = 4096


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a truthy value."""
    return os.environ.get(_ENV_OFF, "") in ("", "0")


def cache_dir() -> Path:
    """Directory of the on-disk layer (may not exist yet)."""
    override = os.environ.get(_ENV_DIR, "")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-sim"


def cache_max_bytes():
    """Disk-layer size bound from ``REPRO_CACHE_MAX_MB``, or None."""
    raw = os.environ.get(_ENV_MAX_MB, "")
    if not raw:
        return None
    try:
        return int(float(raw) * 1024 * 1024)
    except ValueError:
        return None


def cache_mem_entries() -> int:
    """In-process layer entry bound (``REPRO_CACHE_MEM_ENTRIES``).

    0 (or a non-numeric value) means unbounded -- the pre-daemon
    behaviour, useful for short-lived batch runs that want every entry
    resident.
    """
    raw = os.environ.get(_ENV_MEM_MAX, "")
    if not raw:
        return _MEM_MAX_DEFAULT
    try:
        return max(0, int(float(raw)))
    except ValueError:
        return 0


def _canonical(part) -> bytes:
    """Stable byte serialisation of one key part."""
    if isinstance(part, bytes):
        return part
    if is_dataclass(part) and not isinstance(part, type):
        part = asdict(part)
    return json.dumps(part, sort_keys=True, default=str).encode()


def content_key(*parts) -> str:
    """SHA-256 hexdigest over length-framed canonical serialisations.

    Parts may be ``bytes`` (e.g. an encoded program image), dataclasses
    (``GpuSpec``, ``KernelConfig``), or any JSON-serialisable value.
    """
    digest = hashlib.sha256()
    for part in parts:
        blob = _canonical(part)
        digest.update(len(blob).to_bytes(8, "little"))
        digest.update(blob)
    return digest.hexdigest()


def _payload_digest(payload) -> str:
    return hashlib.sha256(_canonical(payload)).hexdigest()


class ResultCache:
    """Two-layer (memory + disk) store of JSON-dict results."""

    def __init__(self, subdir: str = "profiles"):
        self.subdir = subdir
        self._memory: OrderedDict = OrderedDict()

    def _remember(self, key: str, value: dict) -> None:
        """Insert into the in-process LRU layer, evicting past the bound."""
        self._memory[key] = value
        self._memory.move_to_end(key)
        limit = cache_mem_entries()
        if limit <= 0:
            return
        evicted = 0
        while len(self._memory) > limit:
            self._memory.popitem(last=False)
            evicted += 1
        if evicted:
            STATS.count("cache.mem_evictions", evicted)

    # -------------------------------------------------------------- layout

    def _root(self) -> Path:
        return cache_dir() / self.subdir

    def _path(self, key: str) -> Path:
        return self._root() / f"{key}.json"

    def disk_entries(self) -> int:
        """Number of entries currently in the on-disk layer."""
        root = self._root()
        if not root.is_dir():
            return 0
        return sum(1 for _ in root.glob("*.json"))

    def disk_bytes(self) -> int:
        """Total size of the on-disk entries (quarantine excluded)."""
        root = self._root()
        if not root.is_dir():
            return 0
        total = 0
        for entry in root.glob("*.json"):
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def quarantined_entries(self) -> int:
        """Number of files moved aside by integrity failures."""
        qdir = self._root() / "quarantine"
        if not qdir.is_dir():
            return 0
        return sum(1 for _ in qdir.glob("*.json"))

    # ----------------------------------------------------------- integrity

    def _verify(self, envelope):
        """The payload of a sound envelope, else None."""
        if not isinstance(envelope, dict):
            return None
        if envelope.get("schema") != SCHEMA_VERSION:
            return None
        if envelope.get("sim_version") != SIM_VERSION:
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            return None
        if envelope.get("sha256") != _payload_digest(payload):
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        """Move a failed entry aside (never back in circulation)."""
        STATS.count("cache.integrity_fails")
        qdir = path.parent / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    # -------------------------------------------------------------- lookup

    def get(self, key: str):
        """The cached dict for *key*, or None on a miss."""
        if not cache_enabled():
            STATS.count("cache.misses")
            return None
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            STATS.count("cache.mem_hits")
            return hit
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                envelope = json.load(fh)
        except OSError:
            STATS.count("cache.misses")
            return None
        except ValueError:
            # Unparseable (truncated/corrupt) JSON: quarantine and miss.
            if path.is_file():
                self._quarantine(path)
            STATS.count("cache.misses")
            return None
        value = self._verify(envelope)
        if value is None:
            # Parseable but unsound: wrong schema, stale SIM_VERSION or a
            # checksum mismatch.  Never surface it.
            self._quarantine(path)
            STATS.count("cache.misses")
            return None
        try:
            os.utime(path)  # LRU touch: disk hits refresh eviction order
        except OSError:
            pass
        self._remember(key, value)
        STATS.count("cache.disk_hits")
        return value

    def put(self, key: str, value: dict) -> None:
        """Store *value* in both layers (atomic, checksummed on disk)."""
        if not cache_enabled():
            return
        self._remember(key, value)
        envelope = {
            "schema": SCHEMA_VERSION,
            "sim_version": SIM_VERSION,
            "sha256": _payload_digest(value),
            "payload": value,
        }
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(envelope, fh, sort_keys=True)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            # A read-only or full filesystem degrades to memory-only.
            STATS.count("cache.store_errors")
            return
        STATS.count("cache.stores")
        if chaos.active():
            chaos.maybe_corrupt_entry(path)
        if cache_max_bytes() is not None:
            self.evict()

    # ------------------------------------------------------------- hygiene

    def evict(self, max_bytes: int = None,
              tmp_max_age: float = _TMP_MAX_AGE_S) -> int:
        """Size-bounded LRU sweep of the disk layer; returns evictions.

        Entries are unlinked oldest-mtime-first until the layer fits in
        *max_bytes* (default ``REPRO_CACHE_MAX_MB``); stale ``*.tmp``
        spill older than *tmp_max_age* seconds is removed first.
        """
        root = self._root()
        if not root.is_dir():
            return 0
        now = time.time()
        for tmp in root.glob("*.tmp"):
            try:
                if now - tmp.stat().st_mtime >= tmp_max_age:
                    tmp.unlink()
            except OSError:
                pass
        limit = cache_max_bytes() if max_bytes is None else max_bytes
        if limit is None:
            return 0
        entries = []
        for entry in root.glob("*.json"):
            try:
                stat = entry.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, entry))
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, entry in sorted(entries):
            if total <= limit:
                break
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            STATS.count("cache.evictions", evicted)
        return evicted

    def clear(self, disk: bool = False) -> None:
        """Drop the in-process layer; optionally the disk layer too.

        The disk pass also removes orphaned ``*.tmp`` spill from
        interrupted ``put`` calls and any quarantined entries.
        """
        self._memory.clear()
        if disk:
            root = self._root()
            if root.is_dir():
                for pattern in ("*.json", "*.tmp", "quarantine/*.json"):
                    for entry in root.glob(pattern):
                        try:
                            entry.unlink()
                        except OSError:
                            pass


#: Shared cache for SM profiles and timing-run summaries.
PROFILE_CACHE = ResultCache()
