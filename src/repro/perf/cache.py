"""Persistent, content-addressed cache of deterministic simulation results.

The timing simulator is a pure function of its inputs: the encoded program
bytes, the :class:`~repro.arch.turing.GpuSpec` architectural constants, the
CTA count and the simulator's own behaviour (versioned by
:data:`SIM_VERSION`).  The identical (spec, config) profiles were being
re-simulated dozens of times across the test suite and benchmarks; this
module makes every result reusable across *all* ``PerformanceModel``
instances, benchmark files and repeated CLI runs.

Two layers:

* an **in-process dict** on each :class:`ResultCache` (the module singleton
  :data:`PROFILE_CACHE` is shared by everything in one interpreter);
* an **on-disk JSON store**, one file per key, under ``$REPRO_CACHE_DIR``
  (default ``~/.cache/repro-sim``).  Set ``REPRO_NO_CACHE=1`` to disable
  both layers (every lookup misses, nothing is written).

Keys are SHA-256 hexdigests built by :func:`content_key` over
length-framed, canonically-serialised parts, so distinct inputs can never
collide by concatenation.  Values are JSON-serialisable dicts (profile /
timing-run summaries).  **Invariant:** caching never changes reported
numbers -- a hit returns exactly the summary the simulator produced when
the entry was stored, and :data:`SIM_VERSION` must be bumped whenever the
timing model's behaviour changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path

from .stats import STATS

__all__ = [
    "SIM_VERSION",
    "cache_enabled",
    "cache_dir",
    "content_key",
    "ResultCache",
    "PROFILE_CACHE",
]

#: Behavioural version of the timing simulator.  Bump this whenever a
#: change alters simulated cycle counts, so stale disk entries are never
#: returned for the new behaviour.
SIM_VERSION = "timing-v1"

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_OFF = "REPRO_NO_CACHE"


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a truthy value."""
    return os.environ.get(_ENV_OFF, "") in ("", "0")


def cache_dir() -> Path:
    """Directory of the on-disk layer (may not exist yet)."""
    override = os.environ.get(_ENV_DIR, "")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-sim"


def _canonical(part) -> bytes:
    """Stable byte serialisation of one key part."""
    if isinstance(part, bytes):
        return part
    if is_dataclass(part) and not isinstance(part, type):
        part = asdict(part)
    return json.dumps(part, sort_keys=True, default=str).encode()


def content_key(*parts) -> str:
    """SHA-256 hexdigest over length-framed canonical serialisations.

    Parts may be ``bytes`` (e.g. an encoded program image), dataclasses
    (``GpuSpec``, ``KernelConfig``), or any JSON-serialisable value.
    """
    digest = hashlib.sha256()
    for part in parts:
        blob = _canonical(part)
        digest.update(len(blob).to_bytes(8, "little"))
        digest.update(blob)
    return digest.hexdigest()


class ResultCache:
    """Two-layer (memory + disk) store of JSON-dict results."""

    def __init__(self, subdir: str = "profiles"):
        self.subdir = subdir
        self._memory: dict = {}

    # -------------------------------------------------------------- layout

    def _path(self, key: str) -> Path:
        return cache_dir() / self.subdir / f"{key}.json"

    def disk_entries(self) -> int:
        """Number of entries currently in the on-disk layer."""
        root = cache_dir() / self.subdir
        if not root.is_dir():
            return 0
        return sum(1 for _ in root.glob("*.json"))

    # -------------------------------------------------------------- lookup

    def get(self, key: str):
        """The cached dict for *key*, or None on a miss."""
        if not cache_enabled():
            STATS.count("cache.misses")
            return None
        hit = self._memory.get(key)
        if hit is not None:
            STATS.count("cache.mem_hits")
            return hit
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                value = json.load(fh)
        except (OSError, ValueError):
            # Missing, unreadable or corrupt: treat as a miss (and drop a
            # corrupt file so it cannot shadow a future store).
            if path.is_file():
                try:
                    path.unlink()
                except OSError:
                    pass
            STATS.count("cache.misses")
            return None
        self._memory[key] = value
        STATS.count("cache.disk_hits")
        return value

    def put(self, key: str, value: dict) -> None:
        """Store *value* in both layers (atomic on disk)."""
        if not cache_enabled():
            return
        self._memory[key] = value
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(value, fh, sort_keys=True)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            # A read-only or full filesystem degrades to memory-only.
            pass
        STATS.count("cache.stores")

    def clear(self, disk: bool = False) -> None:
        """Drop the in-process layer; optionally the disk layer too."""
        self._memory.clear()
        if disk:
            root = cache_dir() / self.subdir
            if root.is_dir():
                for entry in root.glob("*.json"):
                    try:
                        entry.unlink()
                    except OSError:
                        pass


#: Shared cache for SM profiles and timing-run summaries.
PROFILE_CACHE = ResultCache()
