"""Simulation performance layer: result caching, counters, parallel maps.

Every figure and table in the reproduction funnels through the cycle-level
timing simulator, and one SM profile costs seconds of pure-Python cycle
stepping.  This package makes those results reusable and the work shareable:

* :mod:`repro.perf.cache` -- a persistent, content-addressed cache of
  deterministic simulation results (in-process dict + on-disk JSON under
  ``$REPRO_CACHE_DIR``, default ``~/.cache/repro-sim``; disable with
  ``REPRO_NO_CACHE=1``).  Caching never changes reported numbers: a hit
  returns exactly what the simulator produced when the entry was written,
  and the key covers everything the simulation depends on.
* :mod:`repro.perf.stats` -- lightweight counters/timers (cache hits,
  simulated cycles, wall time) surfaced by ``python -m repro perfstats``.
* :mod:`repro.perf.parallel` -- a ``ProcessPoolExecutor`` map for sweeps
  and autotune finalists; workers populate the shared disk cache.
"""

from .cache import (
    PROFILE_CACHE,
    ResultCache,
    SIM_VERSION,
    cache_dir,
    cache_enabled,
    content_key,
)
from .parallel import default_workers, parallel_map
from .stats import STATS, PerfStats

__all__ = [
    "PROFILE_CACHE",
    "ResultCache",
    "SIM_VERSION",
    "cache_dir",
    "cache_enabled",
    "content_key",
    "default_workers",
    "parallel_map",
    "STATS",
    "PerfStats",
]
