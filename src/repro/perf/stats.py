"""Process-wide performance counters and timers, with scoped attribution.

A single module-level :data:`STATS` instance collects what the performance
layer wants to report: cache hits and misses, simulator invocations, total
simulated cycles and the wall time spent stepping them.  Everything is
plain dict arithmetic -- cheap enough to leave enabled unconditionally.

Counter names use dotted namespaces by convention:

* ``sim.runs`` / ``sim.cycles`` / ``sim.instructions`` -- incremented by
  :class:`~repro.sim.timing.TimingSimulator` per ``run()``.
* ``sim.plans`` / ``sim.plan_insts`` -- incremented by the event timing
  engine when a straight-line MMA issue plan fires: plans executed as one
  stacked batch kernel, and the instructions those plans covered (only
  recorded when nonzero, so a reference-engine run leaves them absent).
* ``sim.ff_periods`` / ``sim.ff_cycles`` -- incremented by the event
  engine's steady-state fast-forward layer: loop periods committed via
  verified replay, and the simulated cycles those commits skipped past
  the exact cycle-by-cycle path (absent when fast-forward never engages
  or is disabled with ``REPRO_TIMING_FF=0``).
* ``sim.wall`` (a timer, seconds) -- wall time inside ``run()``.
* ``func.runs`` / ``func.ctas`` / ``func.instructions`` /
  ``func.workers`` -- incremented by
  :class:`~repro.sim.functional.FunctionalSimulator` per ``run()``
  (grid launches, CTAs executed, instructions retired, and worker
  processes used for CTA-parallel sharding).
* ``func.destacks`` -- incremented by the warp-lockstep engine each time
  a CTA hits a stacked closure that returns ``DIVERGED`` and falls back
  to the per-warp interleave path (see :mod:`repro.sim.decode`).
* ``func.grid_destacks`` -- incremented by the grid-lockstep engine each
  time grid-uniform execution refuses (CTA-divergent control flow or a
  non-uniform stacked closure) and the grid de-stacks to per-CTA runs.
* ``func.wall`` (a timer, seconds) -- wall time inside functional
  ``run()``, including predecode and any worker fan-out.
* ``cache.mem_hits`` / ``cache.disk_hits`` / ``cache.misses`` /
  ``cache.stores`` -- maintained by :mod:`repro.perf.cache`.
* ``cache.integrity_fails`` / ``cache.store_errors`` /
  ``cache.evictions`` / ``cache.mem_evictions`` -- the cache's
  robustness and hygiene edge: disk entries that failed envelope
  verification (quarantined, read as a miss), disk writes that failed
  (entry kept in memory only), entries unlinked by the
  ``REPRO_CACHE_MAX_MB`` LRU sweep, and in-process entries dropped by
  the ``REPRO_CACHE_MEM_ENTRIES`` bound (a long-running daemon must not
  grow its memory layer without limit).
* ``guard.checks`` / ``guard.divergences`` / ``guard.degraded`` --
  maintained by :mod:`repro.robust.guard`: reference re-executions
  performed, mismatches caught, and engine-ladder degradation steps
  taken.
* ``par.tasks`` / ``par.retries`` / ``par.timeouts`` / ``par.crashes`` /
  ``par.pool_rebuilds`` / ``par.serial_fallbacks`` -- maintained by the
  supervised :func:`~repro.perf.parallel.parallel_map`: tasks submitted,
  retry attempts scheduled, per-task deadline kills, abnormal worker
  deaths, replacement workers spawned, and tasks that exhausted their
  retries and ran on the in-process serial last rung.
* ``serve.jobs`` / ``serve.coalesced`` / ``serve.cache_hits`` /
  ``serve.errors`` -- maintained by :mod:`repro.serve`: jobs admitted to
  the daemon's queue, concurrent submissions that attached to an already
  in-flight job with the same cache key (N callers, one simulation, N-1
  coalesced), submissions answered straight from the shared result
  cache, and jobs that failed.
* ``perfstats.wall`` (a timer, seconds) -- the ``perfstats`` CLI
  command's whole measured section (profiling plus warm-up launches).

**Scoped attribution.**  :meth:`PerfStats.scoped` opens a dynamic scope
on the calling thread: every ``count``/``add_time`` performed by that
thread while the scope is active is *also* accumulated on the scope
object, so a server can attribute ``func.*``/``sim.*``/``cache.*``
deltas to the one request it is serving even while other threads serve
other requests.  Scopes nest, and worker-process deltas folded in with
:meth:`PerfStats.merge` land in the merging thread's active scopes too
(the supervised ``parallel_map`` runs its merge loop on the calling
thread, so a scoped sweep sees its workers' counters).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["PerfStats", "ScopedStats", "STATS"]


class ScopedStats:
    """Counter/timer deltas attributed to one dynamic scope.

    Filled incrementally by :class:`PerfStats` while the scope is active
    on its thread -- never by snapshot subtraction, so a concurrent
    ``STATS.reset()`` or another thread's activity cannot corrupt it.
    """

    def __init__(self) -> None:
        self.counters: dict = {}
        self.timers: dict = {}

    def snapshot(self) -> dict:
        """The scope's deltas: ``{"counters": {...}, "timers": {...}}``."""
        return {"counters": dict(self.counters), "timers": dict(self.timers)}


class PerfStats:
    """Named counters plus named wall-time accumulators."""

    def __init__(self) -> None:
        self.counters: dict = {}
        self.timers: dict = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------ mutation

    def _scopes(self):
        return getattr(self._local, "scopes", ())

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount
        for scope in self._scopes():
            scope.counters[name] = scope.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            self.timers[name] = self.timers.get(name, 0.0) + seconds
        for scope in self._scopes():
            scope.timers[name] = scope.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()

    # --------------------------------------------------------- attribution

    @contextmanager
    def scoped(self):
        """Attribute this thread's counts to a :class:`ScopedStats` too.

        Usage::

            with STATS.scoped() as scope:
                run_one_request()
            deltas = scope.snapshot()

        Scopes are per-thread and nest (an inner scope's counts land on
        the outer one as well).  Counts from *other* threads are not
        attributed -- that isolation is the point.
        """
        scope = ScopedStats()
        scopes = getattr(self._local, "scopes", None)
        if scopes is None:
            scopes = self._local.scopes = []
        scopes.append(scope)
        try:
            yield scope
        finally:
            scopes.remove(scope)

    def merge(self, delta: dict) -> None:
        """Fold a ``{"counters", "timers"}`` delta into the totals.

        Used to repatriate counters measured in a worker process (the
        supervised ``parallel_map`` ships each task's delta back with its
        result).  Goes through :meth:`count`/:meth:`add_time`, so the
        merging thread's active scopes see the delta as well.
        """
        for name, amount in (delta.get("counters") or {}).items():
            self.count(name, amount)
        for name, seconds in (delta.get("timers") or {}).items():
            self.add_time(name, seconds)

    def delta(self, before: dict) -> dict:
        """Counters/timers gained since a :meth:`snapshot` *before*.

        Only strictly-positive deltas are reported (a ``reset`` between
        the snapshots would make deltas negative; dropping them keeps the
        payload meaningful as "work done since").
        """
        counters, timers = {}, {}
        with self._lock:
            for name, value in self.counters.items():
                gained = value - before.get("counters", {}).get(name, 0)
                if gained > 0:
                    counters[name] = gained
            for name, value in self.timers.items():
                gained = value - before.get("timers", {}).get(name, 0.0)
                if gained > 0.0:
                    timers[name] = gained
        return {"counters": counters, "timers": timers}

    # ----------------------------------------------------------- reporting

    def snapshot(self) -> dict:
        """Point-in-time copy: ``{"counters": {...}, "timers": {...}}``."""
        with self._lock:
            return {"counters": dict(self.counters),
                    "timers": dict(self.timers)}

    def rate(self, counter: str, timer: str) -> float:
        """counter / timer, or 0.0 when no time has been recorded."""
        elapsed = self.timers.get(timer, 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self.counters.get(counter, 0) / elapsed

    def report(self) -> str:
        """Human-readable multi-line summary (the ``perfstats`` command)."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"{name:<24s} {self.counters[name]:>14,d}")
        for name in sorted(self.timers):
            lines.append(f"{name:<24s} {self.timers[name]:>14.3f} s")
        cps = self.rate("sim.cycles", "sim.wall")
        if cps:
            lines.append(f"{'sim.cycles_per_sec':<24s} {cps:>14,.0f}")
        return "\n".join(lines) if lines else "(no activity recorded)"


#: The process-wide stats instance.
STATS = PerfStats()
