"""Process-wide performance counters and timers.

A single module-level :data:`STATS` instance collects what the performance
layer wants to report: cache hits and misses, simulator invocations, total
simulated cycles and the wall time spent stepping them.  Everything is
plain dict arithmetic -- cheap enough to leave enabled unconditionally.

Counter names use dotted namespaces by convention:

* ``sim.runs`` / ``sim.cycles`` / ``sim.instructions`` -- incremented by
  :class:`~repro.sim.timing.TimingSimulator` per ``run()``.
* ``sim.plans`` / ``sim.plan_insts`` -- incremented by the event timing
  engine when a straight-line MMA issue plan fires: plans executed as one
  stacked batch kernel, and the instructions those plans covered (only
  recorded when nonzero, so a reference-engine run leaves them absent).
* ``sim.ff_periods`` / ``sim.ff_cycles`` -- incremented by the event
  engine's steady-state fast-forward layer: loop periods committed via
  verified replay, and the simulated cycles those commits skipped past
  the exact cycle-by-cycle path (absent when fast-forward never engages
  or is disabled with ``REPRO_TIMING_FF=0``).
* ``sim.wall`` (a timer, seconds) -- wall time inside ``run()``.
* ``func.runs`` / ``func.ctas`` / ``func.instructions`` /
  ``func.workers`` -- incremented by
  :class:`~repro.sim.functional.FunctionalSimulator` per ``run()``
  (grid launches, CTAs executed, instructions retired, and worker
  processes used for CTA-parallel sharding).
* ``func.destacks`` -- incremented by the warp-lockstep engine each time
  a CTA hits a stacked closure that returns ``DIVERGED`` and falls back
  to the per-warp interleave path (see :mod:`repro.sim.decode`).
* ``func.grid_destacks`` -- incremented by the grid-lockstep engine each
  time grid-uniform execution refuses (CTA-divergent control flow or a
  non-uniform stacked closure) and the grid de-stacks to per-CTA runs.
* ``func.wall`` (a timer, seconds) -- wall time inside functional
  ``run()``, including predecode and any worker fan-out.
* ``cache.mem_hits`` / ``cache.disk_hits`` / ``cache.misses`` /
  ``cache.stores`` -- maintained by :mod:`repro.perf.cache`.
* ``cache.integrity_fails`` / ``cache.store_errors`` /
  ``cache.evictions`` -- the cache's robustness edge: disk entries that
  failed envelope verification (quarantined, read as a miss), disk writes
  that failed (entry kept in memory only), and entries unlinked by the
  ``REPRO_CACHE_MAX_MB`` LRU sweep.
* ``guard.checks`` / ``guard.divergences`` / ``guard.degraded`` --
  maintained by :mod:`repro.robust.guard`: reference re-executions
  performed, mismatches caught, and engine-ladder degradation steps
  taken.
* ``par.tasks`` / ``par.retries`` / ``par.timeouts`` / ``par.crashes`` /
  ``par.pool_rebuilds`` / ``par.serial_fallbacks`` -- maintained by the
  supervised :func:`~repro.perf.parallel.parallel_map`: tasks submitted,
  retry attempts scheduled, per-task deadline kills, abnormal worker
  deaths, replacement workers spawned, and tasks that exhausted their
  retries and ran on the in-process serial last rung.
* ``perfstats.wall`` (a timer, seconds) -- the ``perfstats`` CLI
  command's whole measured section (profiling plus warm-up launches).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["PerfStats", "STATS"]


class PerfStats:
    """Named counters plus named wall-time accumulators."""

    def __init__(self) -> None:
        self.counters: dict = {}
        self.timers: dict = {}

    # ------------------------------------------------------------ mutation

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    # ----------------------------------------------------------- reporting

    def snapshot(self) -> dict:
        """Point-in-time copy: ``{"counters": {...}, "timers": {...}}``."""
        return {"counters": dict(self.counters), "timers": dict(self.timers)}

    def rate(self, counter: str, timer: str) -> float:
        """counter / timer, or 0.0 when no time has been recorded."""
        elapsed = self.timers.get(timer, 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self.counters.get(counter, 0) / elapsed

    def report(self) -> str:
        """Human-readable multi-line summary (the ``perfstats`` command)."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"{name:<24s} {self.counters[name]:>14,d}")
        for name in sorted(self.timers):
            lines.append(f"{name:<24s} {self.timers[name]:>14.3f} s")
        cps = self.rate("sim.cycles", "sim.wall")
        if cps:
            lines.append(f"{'sim.cycles_per_sec':<24s} {cps:>14,.0f}")
        return "\n".join(lines) if lines else "(no activity recorded)"


#: The process-wide stats instance.
STATS = PerfStats()
