"""Named workload suites: registry, functional runner, estimates.

A :class:`Workload` is one deep-learning layer expressed at two scales:

* ``sim``  -- small shapes that run end-to-end through the functional
  simulator in seconds, verified bit-exactly against the precision
  model (what CI and ``repro workloads run`` execute);
* ``full`` -- the production shapes the paper's Section I motivates
  (BERT-large, ResNet-50, LSTM), fed to the device performance model
  for predicted TFLOPS (``repro workloads estimate``).

Suites group workloads under the names users ask for (``bert``,
``resnet``, ``lstm``, ``layers``, ``smoke``).  Every simulated member
must be bit-exact against its oracle -- a suite run is a verification
sweep over the whole deep-learning scenario space, not just a demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.turing import GpuSpec, RTX2070
from ..core.hgemm import hgemm, hgemm_reference
from ..report import format_table
from .attention import AttentionSpec, attention_head, attention_head_reference
from .batched import hgemm_strided_batched, hgemm_strided_batched_reference
from .conv import ConvSpec, conv2d, conv2d_reference

__all__ = [
    "GemmShape", "Workload", "WorkloadSuite", "WorkloadResult",
    "SuiteResult", "SUITES", "get_suite", "suite_names", "run_suite",
    "estimate_suite",
]


@dataclass(frozen=True)
class GemmShape:
    """One GEMM problem: ``count`` independent instances of (m, n, k)."""

    name: str
    m: int
    n: int
    k: int
    count: int = 1

    def describe(self) -> str:
        body = f"{self.m}x{self.n}x{self.k}"
        return f"{self.count} x {body}" if self.count > 1 else body

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k * self.count


@dataclass(frozen=True)
class Workload:
    """One layer at both scales.  ``sim``/``full`` hold the kind-specific
    problem object: a :class:`GemmShape` for ``gemm``/``batched`` (its
    ``count`` is the batch), a :class:`~repro.workloads.conv.ConvSpec`
    for ``conv``, an :class:`~repro.workloads.attention.AttentionSpec`
    for ``attention``."""

    name: str
    kind: str                  # "gemm" | "batched" | "conv" | "attention"
    sim: object
    full: object
    note: str = ""

    def __post_init__(self) -> None:
        kinds = ("gemm", "batched", "conv", "attention")
        if self.kind not in kinds:
            raise ValueError(f"kind must be one of {kinds}, got {self.kind!r}")

    def problems(self, scale: str = "full") -> list:
        """The workload's GEMMs at *scale*, as :class:`GemmShape` rows."""
        obj = self._at(scale)
        if self.kind in ("gemm", "batched"):
            return [obj]
        if self.kind == "conv":
            m, n, k = obj.gemm_shape
            return [GemmShape(name=f"{self.name} im2col", m=m, n=n, k=k)]
        probs = [GemmShape(name=f"{self.name} {name}", m=m, n=n, k=k,
                           count=count)
                 for name, m, n, k, count in obj.gemm_problems()]
        return probs

    def _at(self, scale: str):
        if scale not in ("sim", "full"):
            raise ValueError(f"scale must be 'sim' or 'full', got {scale!r}")
        return self.sim if scale == "sim" else self.full


@dataclass(frozen=True)
class WorkloadSuite:
    """A named group of workloads."""

    name: str
    description: str
    workloads: tuple

    def problems(self, scale: str = "full") -> list:
        return [p for w in self.workloads for p in w.problems(scale)]


def _bert(scale_seq: int, d_model: int, heads: int) -> AttentionSpec:
    return AttentionSpec(seq=scale_seq, d_model=d_model, n_heads=heads)


#: The registry.  Simulation-scale shapes are chosen so every GEMM
#: dimension tiles on all four registry devices (m, n multiples of 64;
#: k a multiple of 32, covering Ampere's HMMA.16816 k-step).
SUITES = {}


def _register(suite: WorkloadSuite) -> WorkloadSuite:
    SUITES[suite.name] = suite
    return suite


_register(WorkloadSuite(
    name="layers",
    description="the paper's Section I motivating layer GEMMs "
                "(FC, conv-as-GEMM, LSTM, BERT projections)",
    workloads=(
        Workload("fc-classifier", "gemm",
                 sim=GemmShape("FC layer", 128, 256, 64),
                 full=GemmShape("classifier FC, batch 1024",
                                1024, 1024, 4096)),
        Workload("bert-qkv", "gemm",
                 sim=GemmShape("QKV projection", 64, 192, 64),
                 full=GemmShape("BERT-large QKV projection (seq 512)",
                                512, 3072, 1024)),
        Workload("bert-ffn-up", "gemm",
                 sim=GemmShape("FFN up", 64, 256, 64),
                 full=GemmShape("BERT-large FFN up (seq 512)",
                                512, 4096, 1024)),
        Workload("bert-ffn-down", "gemm",
                 sim=GemmShape("FFN down", 64, 64, 256),
                 full=GemmShape("BERT-large FFN down (seq 512)",
                                512, 1024, 4096)),
        Workload("lstm-cell", "gemm",
                 sim=GemmShape("LSTM gates", 64, 256, 128),
                 full=GemmShape("LSTM cell, hidden 1024, batch 256",
                                256, 4096, 2048)),
        Workload("resnet-conv-gemm", "gemm",
                 sim=GemmShape("conv3x3 as GEMM", 128, 64, 288),
                 full=GemmShape("ResNet conv3x3 as GEMM (56x56x256)",
                                3136, 256, 2304)),
    ),
))

_register(WorkloadSuite(
    name="bert",
    description="one BERT-large self-attention layer: QKV projection, "
                "per-head tall-skinny scores, rectangular P@V, output "
                "projection",
    workloads=(
        Workload("attention", "attention",
                 sim=_bert(64, 64, 1),
                 full=_bert(512, 1024, 16),
                 note="softmax runs host-side in FP32, as mixed-precision "
                      "frameworks do"),
        Workload("ffn-up", "gemm",
                 sim=GemmShape("FFN up", 64, 256, 64),
                 full=GemmShape("FFN up (seq 512)", 512, 4096, 1024)),
        Workload("ffn-down", "gemm",
                 sim=GemmShape("FFN down", 64, 64, 256),
                 full=GemmShape("FFN down (seq 512)", 512, 1024, 4096)),
    ),
))

_register(WorkloadSuite(
    name="resnet",
    description="ResNet-style convolutions lowered to GEMM via im2col",
    workloads=(
        Workload("conv3x3", "conv",
                 sim=ConvSpec(n=1, h=8, w=8, c_in=32, c_out=64, pad=1),
                 full=ConvSpec(n=1, h=56, w=56, c_in=256, c_out=256, pad=1),
                 note="NHWC x RSCK; M = N*OH*OW patch rows"),
        Workload("conv3x3-strided", "conv",
                 sim=ConvSpec(n=2, h=16, w=16, c_in=32, c_out=64,
                              pad=1, stride=2),
                 full=ConvSpec(n=1, h=56, w=56, c_in=256, c_out=512,
                               pad=1, stride=2)),
        Workload("conv1x1", "conv",
                 sim=ConvSpec(n=1, h=8, w=8, c_in=64, c_out=128, r=1, s=1),
                 full=ConvSpec(n=1, h=56, w=56, c_in=256, c_out=512,
                               r=1, s=1),
                 note="pointwise: im2col degenerates to a plain reshape"),
    ),
))

_register(WorkloadSuite(
    name="lstm",
    description="LSTM cell gates: four gate GEMMs sharing one input, "
                "run as a strided batch",
    workloads=(
        Workload("gates", "batched",
                 sim=GemmShape("gate GEMMs", 64, 64, 128, count=4),
                 full=GemmShape("gate GEMMs, hidden 1024, batch 256",
                                256, 1024, 2048, count=4),
                 note="A (the input) has batch stride 0; each gate has "
                      "its own weights"),
    ),
))

_register(WorkloadSuite(
    name="smoke",
    description="one small member of every workload kind (CI suite)",
    workloads=(
        Workload("gemm", "gemm",
                 sim=GemmShape("square", 64, 64, 32),
                 full=GemmShape("square", 4096, 4096, 4096)),
        Workload("batched", "batched",
                 sim=GemmShape("batch", 64, 64, 32, count=2),
                 full=GemmShape("batch", 512, 512, 512, count=8)),
        Workload("conv", "conv",
                 sim=ConvSpec(n=1, h=8, w=8, c_in=32, c_out=64, pad=1),
                 full=ConvSpec(n=8, h=28, w=28, c_in=128, c_out=128, pad=1)),
        Workload("attention", "attention",
                 sim=_bert(64, 64, 1),
                 full=_bert(512, 512, 8)),
    ),
))


def suite_names() -> list:
    return sorted(SUITES)


def get_suite(name) -> WorkloadSuite:
    """Look up a suite by name (or pass a :class:`WorkloadSuite` through)."""
    if isinstance(name, WorkloadSuite):
        return name
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload suite {name!r}; known: {suite_names()}"
        ) from None


# ------------------------------------------------------ functional runner

@dataclass
class WorkloadResult:
    """One workload executed through the functional simulator."""

    workload: str
    kind: str
    shape: str
    exact: bool
    instructions: int = 0
    mma: int = 0
    ctas: int = 0
    launches: int = 1
    message: str = ""


@dataclass
class SuiteResult:
    """All workloads of one suite run."""

    suite: str
    device: str
    scale: str
    results: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.exact for r in self.results)

    @property
    def instructions(self) -> int:
        return sum(r.instructions for r in self.results)

    def table(self) -> str:
        rows = [(r.workload, r.kind, r.shape, r.launches, r.instructions,
                 r.mma, "yes" if r.exact else "NO")
                for r in self.results]
        return format_table(
            ["workload", "kind", "GEMM", "launches", "instructions",
             "MMA", "bit-exact"],
            rows, title=f"workload suite '{self.suite}' on {self.device} "
                        f"({self.scale} scale)")

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [self.table(),
                 f"{status}: {sum(r.exact for r in self.results)}/"
                 f"{len(self.results)} workloads bit-exact vs the "
                 "precision model"]
        for r in self.results:
            if not r.exact:
                lines.append(f"  FAIL {r.workload}: {r.message}")
        return "\n".join(lines)


def _run_gemm(shape: GemmShape, spec, kernel, rng, max_workers, engine):
    a = rng.uniform(-1, 1, (shape.m, shape.k)).astype(np.float16)
    b = rng.uniform(-1, 1, (shape.k, shape.n)).astype(np.float16)
    run = hgemm(a, b, kernel=kernel, spec=spec, return_run=True,
                max_workers=max_workers, engine=engine)
    oracle = hgemm_reference(a, b, w_k=run.config.w_k)
    stats = {"instructions": run.stats.instructions_retired,
             "mma": run.stats.opcode_counts.get("HMMA", 0),
             "ctas": run.stats.ctas_run, "launches": 1}
    return bool(np.array_equal(run.c, oracle)), stats


def _run_batched(shape: GemmShape, spec, kernel, rng, max_workers, engine):
    # Shared input (stride 0), per-entry weights: the LSTM-gate layout.
    a = rng.uniform(-1, 1, (shape.m, shape.k)).astype(np.float16)
    b = rng.uniform(-1, 1, (shape.count, shape.k, shape.n)).astype(np.float16)
    run = hgemm_strided_batched(a, b, kernel=kernel, spec=spec,
                                return_run=True, max_workers=max_workers,
                                engine=engine)
    oracle = hgemm_strided_batched_reference(a, b, w_k=run.config.w_k)
    stats = {"instructions": run.instructions, "mma": run.mma,
             "ctas": run.ctas, "launches": run.launches}
    return bool(np.array_equal(run.c, oracle)), stats


def _run_conv(conv: ConvSpec, spec, kernel, rng, max_workers, engine):
    x = rng.uniform(-1, 1, (conv.n, conv.h, conv.w,
                            conv.c_in)).astype(np.float16)
    w = rng.uniform(-0.5, 0.5, (conv.r, conv.s, conv.c_in,
                                conv.c_out)).astype(np.float16)
    run = conv2d(x, w, conv, device=spec, kernel=kernel, return_run=True,
                 max_workers=max_workers, engine=engine)
    oracle = conv2d_reference(x, w, conv, w_k=run.config.w_k)
    out = run.c.reshape(oracle.shape)
    stats = {"instructions": run.stats.instructions_retired,
             "mma": run.stats.opcode_counts.get("HMMA", 0),
             "ctas": run.stats.ctas_run, "launches": 1}
    return bool(np.array_equal(out, oracle)), stats


def _run_attention(att: AttentionSpec, spec, kernel, rng, max_workers,
                   engine):
    heads_exact = True
    stats = {"instructions": 0, "mma": 0, "ctas": 0, "launches": 0}
    for _head in range(att.n_heads):
        q = rng.uniform(-1, 1, (att.seq, att.d_head)).astype(np.float16)
        k = rng.uniform(-1, 1, (att.seq, att.d_head)).astype(np.float16)
        v = rng.uniform(-1, 1, (att.seq, att.d_head)).astype(np.float16)
        out, head_stats = attention_head(q, k, v, device=spec, kernel=kernel,
                                         max_workers=max_workers,
                                         engine=engine)
        oracle = attention_head_reference(q, k, v, device=spec, kernel=kernel)
        heads_exact &= bool(np.array_equal(out, oracle))
        for key in stats:
            stats[key] += head_stats[key]
    return heads_exact, stats


_RUNNERS = {"gemm": _run_gemm, "batched": _run_batched,
            "conv": _run_conv, "attention": _run_attention}


def run_suite(suite, spec: GpuSpec = RTX2070, scale: str = "sim",
              kernel="ours", seed: int = 0, max_workers: int = None,
              engine: str = None) -> SuiteResult:
    """Run every workload of *suite* through the functional simulator.

    Each member executes the real generated kernel and is checked
    bit-exactly against its precision-model oracle.  ``scale='sim'``
    (the default) uses the small shapes; ``scale='full'`` runs the
    production shapes -- only advisable with a warm cache and patience.
    """
    suite = get_suite(suite)
    out = SuiteResult(suite=suite.name, device=spec.name, scale=scale)
    for i, workload in enumerate(suite.workloads):
        problem = workload._at(scale)
        rng = np.random.default_rng(seed * 1000 + i)
        shape = ", ".join(p.describe() for p in workload.problems(scale))
        try:
            exact, stats = _RUNNERS[workload.kind](
                problem, spec, kernel, rng, max_workers, engine)
            out.results.append(WorkloadResult(
                workload=workload.name, kind=workload.kind, shape=shape,
                exact=exact, message="" if exact else "result differs "
                "from the precision model", **stats))
        except Exception as exc:
            out.results.append(WorkloadResult(
                workload=workload.name, kind=workload.kind, shape=shape,
                exact=False, message=str(exc)))
    return out


# ----------------------------------------------------------- estimates

def estimate_suite(suite, spec: GpuSpec = RTX2070, scale: str = "full",
                   model=None, baseline: bool = True,
                   max_workers: int = None) -> list:
    """Performance-model estimates for every GEMM of *suite* at *scale*.

    Returns rows of ``(GemmShape, tile_label, estimate, baseline_est)``
    where the tile label is the winning member of the kernel family
    (the big 256x256 tile vs the small-layer 128x128 variant -- the
    shape-aware selection a production library performs) and
    ``baseline_est`` is the cuBLAS-like estimate with its documented
    quirks (None with ``baseline=False``).  ``model`` shares SM-profile
    caches across calls.
    """
    from ..analysis.perf_model import PerformanceModel
    from ..core.config import cublas_like, ours

    suite = get_suite(suite)
    pm = model or PerformanceModel(spec)
    family = {
        "256x256": ours(),
        "128x128": ours(b_m=128, b_n=128, w_m=64, w_n=64, name="ours-small"),
    }
    pm.profile_many(list(family.values()) + ([cublas_like()] if baseline
                                             else []),
                    max_workers=max_workers)
    rows = []
    for problem in suite.problems(scale):
        candidates = {label: pm.estimate(cfg, problem.m, problem.n, problem.k)
                      for label, cfg in family.items()}
        label = max(candidates, key=lambda key: candidates[key].tflops)
        base = None
        if baseline:
            base = pm.estimate(cublas_like(), problem.m, problem.n,
                               problem.k, baseline_quirks=True)
        rows.append((problem, label, candidates[label], base))
    return rows


def format_estimates(rows, spec: GpuSpec, title: str = "") -> str:
    """Render :func:`estimate_suite` rows as the layer-performance table."""
    table = []
    for problem, label, est, base in rows:
        row = [problem.name, problem.describe(), label,
               round(est.tflops, 1)]
        if base is not None:
            row += [round(base.tflops, 1), round(est.tflops / base.tflops, 2)]
        row.append(est.bound)
        table.append(tuple(row))
    headers = ["layer", "GEMM", "tile", "ours TFLOPS"]
    if rows and rows[0][3] is not None:
        headers += ["cuBLAS TFLOPS", "speedup"]
    headers.append("bound")
    return format_table(headers, table,
                        title=title or "Predicted layer GEMM performance "
                        f"on {spec.name} (shape-aware tile selection)")
