"""Convolution as implicit GEMM: the im2col lowering (paper Section I).

Frameworks feed convolutions to Tensor Cores by lowering them to GEMM:
every output pixel's receptive field becomes one row of a patch matrix
(``im2col``), the filter bank becomes a ``(R*S*C) x K`` weight matrix,
and the convolution is one ``(N*OH*OW) x K x (R*S*C)`` GEMM.  This
module provides the shape mapper plus a functional ``conv2d`` that runs
the lowered GEMM through the real simulated kernel, so the Tensor Core
precision model applies to the convolution exactly as it does to plain
HGEMM.

Layout conventions: activations are NHWC, weights are ``(R, S, C, K)``
(filter height, width, input channels, output channels) -- the layouts
cuDNN's implicit-GEMM kernels prefer, and the ones under which im2col
rows are contiguous channel runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.turing import GpuSpec, RTX2070
from ..core.hgemm import hgemm, hgemm_reference

__all__ = ["ConvSpec", "im2col", "weights_matrix", "conv2d",
           "conv2d_reference"]


@dataclass(frozen=True)
class ConvSpec:
    """One 2-D convolution layer and its implicit-GEMM shape."""

    n: int            # batch
    h: int            # input height
    w: int            # input width
    c_in: int         # input channels
    c_out: int        # output channels (filter count K)
    r: int = 3        # filter height
    s: int = 3        # filter width
    stride: int = 1
    pad: int = 0

    def __post_init__(self) -> None:
        if min(self.n, self.h, self.w, self.c_in, self.c_out,
               self.r, self.s, self.stride) < 1 or self.pad < 0:
            raise ValueError(f"invalid convolution spec {self}")
        if (self.h + 2 * self.pad < self.r
                or self.w + 2 * self.pad < self.s):
            raise ValueError(
                f"filter {self.r}x{self.s} does not fit the padded "
                f"{self.h + 2 * self.pad}x{self.w + 2 * self.pad} input")

    @property
    def out_h(self) -> int:
        return (self.h + 2 * self.pad - self.r) // self.stride + 1

    @property
    def out_w(self) -> int:
        return (self.w + 2 * self.pad - self.s) // self.stride + 1

    @property
    def gemm_shape(self) -> tuple:
        """(m, n, k) of the lowered GEMM: patches x filters."""
        return (self.n * self.out_h * self.out_w, self.c_out,
                self.r * self.s * self.c_in)

    @property
    def flops(self) -> int:
        m, n, k = self.gemm_shape
        return 2 * m * n * k

    def describe(self) -> str:
        m, n, k = self.gemm_shape
        return (f"conv {self.r}x{self.s} s{self.stride}p{self.pad} on "
                f"{self.n}x{self.h}x{self.w}x{self.c_in} -> {self.c_out} "
                f"channels == GEMM {m}x{n}x{k}")


def im2col(x, spec: ConvSpec) -> np.ndarray:
    """Lower NHWC activations to the ``(N*OH*OW, R*S*C)`` patch matrix.

    Row order is (n, oh, ow); column order is (r, s, c) -- matching
    :func:`weights_matrix` so the GEMM contraction lines up.
    """
    x = np.ascontiguousarray(x, dtype=np.float16)
    if x.shape != (spec.n, spec.h, spec.w, spec.c_in):
        raise ValueError(f"activations must be NHWC {spec.n}x{spec.h}x"
                         f"{spec.w}x{spec.c_in}, got {x.shape}")
    if spec.pad:
        x = np.pad(x, ((0, 0), (spec.pad, spec.pad),
                       (spec.pad, spec.pad), (0, 0)))
    oh, ow = spec.out_h, spec.out_w
    patches = np.empty((spec.n, oh, ow, spec.r, spec.s, spec.c_in),
                       dtype=np.float16)
    for dr in range(spec.r):
        for ds in range(spec.s):
            tile = x[:, dr : dr + oh * spec.stride : spec.stride,
                     ds : ds + ow * spec.stride : spec.stride, :]
            patches[:, :, :, dr, ds, :] = tile
    return patches.reshape(spec.n * oh * ow, spec.r * spec.s * spec.c_in)


def weights_matrix(w, spec: ConvSpec) -> np.ndarray:
    """Reshape ``(R, S, C, K)`` filters to the ``(R*S*C, K)`` GEMM operand."""
    w = np.ascontiguousarray(w, dtype=np.float16)
    if w.shape != (spec.r, spec.s, spec.c_in, spec.c_out):
        raise ValueError(f"weights must be {spec.r}x{spec.s}x{spec.c_in}x"
                         f"{spec.c_out} (RSCK), got {w.shape}")
    return w.reshape(spec.r * spec.s * spec.c_in, spec.c_out)


def conv2d(x, w, spec: ConvSpec, device: GpuSpec = RTX2070,
           kernel="ours", accumulate: str = "f16",
           max_workers: int = None, engine: str = None,
           return_run: bool = False):
    """Convolve NHWC *x* with RSCK *w* on the simulated device.

    The lowered GEMM runs through :func:`repro.core.hgemm` -- the actual
    generated SASS on the functional simulator -- so the result carries
    the true per-HMMA rounding.  Returns ``(N, OH, OW, K)`` activations
    (float32 under ``accumulate='f32'``), or the underlying
    :class:`~repro.core.hgemm.HgemmRun` when *return_run* (its ``c`` is
    the flat patch matrix).
    """
    patches = im2col(x, spec)
    filters = weights_matrix(w, spec)
    run = hgemm(patches, filters, kernel=kernel, spec=device,
                accumulate=accumulate, return_run=True,
                max_workers=max_workers, engine=engine)
    if return_run:
        return run
    return run.c.reshape(spec.n, spec.out_h, spec.out_w, spec.c_out)


def conv2d_reference(x, w, spec: ConvSpec, w_k: int = 8,
                     accumulate: str = "f16") -> np.ndarray:
    """Precision-model oracle: the same im2col lowering through
    :func:`repro.core.hgemm_reference` (bit-exact against :func:`conv2d`
    when ``w_k`` matches the resolved kernel's warp k-step)."""
    out = hgemm_reference(im2col(x, spec), weights_matrix(w, spec),
                          w_k=w_k, accumulate=accumulate)
    return out.reshape(spec.n, spec.out_h, spec.out_w, spec.c_out)
