"""Batched/strided GEMM: independent problems through ``Device.launch``.

The paper's related work (Li et al. [16]) targets batched small GEMMs --
the shape deep-learning frameworks feed cuBLAS as
``cublasHgemmStridedBatched``: ``C[i] = A[i] @ B[i]`` for a stack of
identically-shaped problems, where any operand may have batch stride
zero (one weight matrix shared by every batch entry, the LSTM/FC case).

This driver reproduces that call on the simulated device: all operands
are packed into one :class:`~repro.sim.gpu.Device` memory arena at
their batch strides, one kernel is resolved for the common shape, and
each entry's grid is driven through ``Device.launch``.  The generated
program is rebuilt per entry only because the operand addresses differ;
the kernel configuration (and therefore the SASS schedule) is resolved
once for the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.turing import GpuSpec, RTX2070
from ..core.builder import HgemmProblem, build_hgemm
from ..core.hgemm import hgemm_reference, resolve_config
from ..sim.gpu import Device

__all__ = ["BatchedRun", "hgemm_strided_batched",
           "hgemm_strided_batched_reference"]


@dataclass
class BatchedRun:
    """Result of one strided-batched launch sequence."""

    c: np.ndarray              # (batch, m, n)
    config: object             # the resolved KernelConfig (shared)
    launches: int              # grids driven through Device.launch
    instructions: int = 0      # retired, summed over the batch
    ctas: int = 0              # CTAs run, summed over the batch
    mma: int = 0               # HMMA instructions, summed over the batch
    per_entry: list = field(default_factory=list)  # FunctionalResult stats

    def __array__(self, dtype=None, copy=None):
        arr = self.c
        if dtype is not None:
            arr = arr.astype(dtype)
        return arr


def _as_batch(x, name: str, batch: int) -> tuple:
    """(array, strided) where a 2-D operand broadcasts with stride 0."""
    arr = np.ascontiguousarray(x, dtype=np.float16)
    if arr.ndim == 2:
        return arr[np.newaxis], False
    if arr.ndim != 3:
        raise ValueError(f"{name} must be 2-D (broadcast) or 3-D (batched), "
                         f"got shape {arr.shape}")
    if arr.shape[0] != batch:
        raise ValueError(f"{name} has batch {arr.shape[0]}, expected {batch}")
    return arr, True


def _aligned(nbytes: int) -> int:
    return (nbytes + 255) // 256 * 256


def hgemm_strided_batched(a, b, kernel="ours", spec: GpuSpec = RTX2070,
                          accumulate: str = "f16", max_workers: int = None,
                          engine: str = None, return_run: bool = False):
    """Compute ``C[i] = A[i] @ B[i]`` for a stack of independent problems.

    Args:
        a: (batch, m, k) float16 stack, or (m, k) to share one A across
           the batch (batch stride 0).
        b: (batch, k, n) stack, or (k, n) shared weights (stride 0) --
           the fully-connected / LSTM-gate layout.
        kernel: "ours", "cublas", or an explicit KernelConfig; resolved
           once for the common (m, n, k) shape.
        spec: target device.
        accumulate: "f16" or "f32" (see :func:`repro.core.hgemm`).
        max_workers: CTA-parallel workers per launch.
        engine: functional engine for every launch (None ->
           ``REPRO_FUNC_ENGINE``).
        return_run: also return per-batch statistics.

    Returns:
        (batch, m, n) array, or a :class:`BatchedRun` when *return_run*.

    At least one operand must be 3-D (it determines the batch count).
    """
    a_arr = np.ascontiguousarray(a, dtype=np.float16)
    b_arr = np.ascontiguousarray(b, dtype=np.float16)
    if a_arr.ndim == 2 and b_arr.ndim == 2:
        raise ValueError("at least one operand must be batched (3-D); "
                         "use repro.hgemm for a single GEMM")
    batch = a_arr.shape[0] if a_arr.ndim == 3 else b_arr.shape[0]
    a_s, a_strided = _as_batch(a_arr, "A", batch)
    b_s, b_strided = _as_batch(b_arr, "B", batch)
    m, k = a_s.shape[1:]
    if b_s.shape[1] != k:
        raise ValueError(f"incompatible operands: A(..,{m},{k}) @ "
                         f"B(..,{b_s.shape[1]},{b_s.shape[2]})")
    n = b_s.shape[2]

    config = resolve_config(kernel, m, n, k, accumulate, spec)
    c_dtype = np.float32 if config.accum_f32 else np.float16

    a_stride = _aligned(m * k * 2) if a_strided else 0
    b_stride = _aligned(k * n * 2) if b_strided else 0
    c_stride = _aligned(m * n * np.dtype(c_dtype).itemsize)
    a_bytes = _aligned(m * k * 2) * (batch if a_strided else 1)
    b_bytes = _aligned(k * n * 2) * (batch if b_strided else 1)
    total = a_bytes + b_bytes + c_stride * batch + (4 << 10)

    dev = Device(spec, memory_bytes=_aligned(total))
    a_base = dev.malloc(a_bytes)
    b_base = dev.malloc(b_bytes)
    c_base = dev.malloc(c_stride * batch)
    for i in range(a_s.shape[0]):
        dev.memcpy_htod(a_base + i * a_stride, a_s[i])
    for i in range(b_s.shape[0]):
        # B is stored transposed (n x k) on the device, as hgemm does.
        dev.memcpy_htod(b_base + i * b_stride,
                        np.ascontiguousarray(b_s[i].T))

    run = BatchedRun(c=np.empty((batch, m, n), dtype=c_dtype),
                     config=config, launches=batch)
    grid = config.grid_dim(m, n)
    for i in range(batch):
        problem = HgemmProblem(
            m=m, n=n, k=k,
            a_addr=a_base + i * a_stride,
            b_addr=b_base + i * b_stride,
            c_addr=c_base + i * c_stride,
        )
        program = build_hgemm(config, problem, spec)
        stats = dev.launch(program, grid=grid, max_workers=max_workers,
                           engine=engine)
        run.instructions += stats.instructions_retired
        run.ctas += stats.ctas_run
        run.mma += stats.opcode_counts.get("HMMA", 0)
        run.per_entry.append(stats)
        run.c[i] = dev.memcpy_dtoh(c_base + i * c_stride, c_dtype,
                                   m * n).reshape(m, n)
    if return_run:
        return run
    return run.c


def hgemm_strided_batched_reference(a, b, w_k: int = 8,
                                    accumulate: str = "f16") -> np.ndarray:
    """Precision-model oracle for :func:`hgemm_strided_batched`.

    Broadcasting rules match the driver: 2-D operands are shared across
    the batch.  ``w_k`` must be the resolved config's warp k-step (the
    device generation's native HMMA k).
    """
    a_arr = np.ascontiguousarray(a, dtype=np.float16)
    b_arr = np.ascontiguousarray(b, dtype=np.float16)
    batch = a_arr.shape[0] if a_arr.ndim == 3 else b_arr.shape[0]
    a_s, _ = _as_batch(a_arr, "A", batch)
    b_s, _ = _as_batch(b_arr, "B", batch)
    out = [hgemm_reference(a_s[min(i, a_s.shape[0] - 1)],
                           b_s[min(i, b_s.shape[0] - 1)],
                           w_k=w_k, accumulate=accumulate)
           for i in range(batch)]
    return np.stack(out)
