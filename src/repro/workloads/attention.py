"""Attention-shaped GEMMs: the transformer problems the paper never ran.

One attention head is two chained GEMMs with a softmax between them:

* ``S = Q @ K^T`` -- a *tall-skinny* problem ``(seq x seq x d_head)``:
  the contracted dimension is tiny (64 in BERT), so the kernel runs few
  k-iterations per CTA and the launch is fixed-cost dominated;
* ``O = P @ V`` -- a *rectangular* problem ``(seq x d_head x seq)``:
  a long contraction onto a narrow output, the shape where FP16
  accumulation error grows fastest (every output element sums ``seq``
  products -- see :mod:`repro.numerics`).

Both run through the real generated kernel on the functional simulator.
The softmax itself is not a Tensor Core op on any generation this
family models; it executes host-side in float32 and rounds to float16,
the way frameworks run mixed-precision attention (matmuls on Tensor
Cores, reductions in FP32).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.turing import GpuSpec, RTX2070
from ..core.hgemm import hgemm, hgemm_reference, resolve_config

__all__ = ["AttentionSpec", "attention_head", "attention_head_reference"]


@dataclass(frozen=True)
class AttentionSpec:
    """Shape of one multi-head self-attention layer."""

    seq: int           # sequence length (rows of Q/K/V)
    d_model: int       # model width
    n_heads: int

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads:
            raise ValueError(f"d_model={self.d_model} is not divisible by "
                             f"n_heads={self.n_heads}")

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads

    def gemm_problems(self) -> list:
        """The layer's GEMMs as (name, m, n, k, count) tuples.

        ``count`` is how many independent instances one layer launches
        (per-head score/output GEMMs are a batch of ``n_heads``).
        """
        return [
            ("QKV projection", self.seq, 3 * self.d_model, self.d_model, 1),
            ("scores Q@K^T", self.seq, self.seq, self.d_head, self.n_heads),
            ("output P@V", self.seq, self.d_head, self.seq, self.n_heads),
            ("out projection", self.seq, self.d_model, self.d_model, 1),
        ]


def _softmax_rows_f16(scores: np.ndarray, scale: float) -> np.ndarray:
    """Row softmax of *scores* in float32, rounded once to float16.

    The max-subtraction form is what every framework ships; running it
    in float32 keeps the reduction out of the half-precision error
    budget so the GEMMs' contribution stays isolated.
    """
    s32 = scores.astype(np.float32) * np.float32(scale)
    s32 -= s32.max(axis=1, keepdims=True)
    e = np.exp(s32)
    return (e / e.sum(axis=1, keepdims=True)).astype(np.float16)


def attention_head(q, k, v, device: GpuSpec = RTX2070, kernel="ours",
                   max_workers: int = None, engine: str = None):
    """One attention head on the simulated device.

    Args:
        q, k, v: (seq, d_head) float16 matrices.

    Returns:
        (out, stats) -- the (seq, d_head) float16 context output, and a
        dict of aggregate launch statistics (instructions, HMMA count,
        CTAs) over the two GEMMs.
    """
    q16 = np.ascontiguousarray(q, dtype=np.float16)
    k16 = np.ascontiguousarray(k, dtype=np.float16)
    v16 = np.ascontiguousarray(v, dtype=np.float16)
    seq, d_head = q16.shape
    if k16.shape != (seq, d_head) or v16.shape != (seq, d_head):
        raise ValueError(f"Q/K/V must all be ({seq}, {d_head}); got "
                         f"K{k16.shape}, V{v16.shape}")
    scores = hgemm(q16, np.ascontiguousarray(k16.T), kernel=kernel,
                   spec=device, return_run=True, max_workers=max_workers,
                   engine=engine)
    p = _softmax_rows_f16(scores.c, 1.0 / np.sqrt(d_head))
    out = hgemm(p, v16, kernel=kernel, spec=device, return_run=True,
                max_workers=max_workers, engine=engine)
    stats = {
        "instructions": (scores.stats.instructions_retired
                         + out.stats.instructions_retired),
        "mma": (scores.stats.opcode_counts.get("HMMA", 0)
                + out.stats.opcode_counts.get("HMMA", 0)),
        "ctas": scores.stats.ctas_run + out.stats.ctas_run,
        "launches": 2,
    }
    return out.c, stats


def attention_head_reference(q, k, v, device: GpuSpec = RTX2070,
                             kernel="ours") -> np.ndarray:
    """Precision-model oracle for :func:`attention_head`.

    Uses the same host-side softmax and the per-``w_k`` step-rounding
    GEMM model, with each GEMM's ``w_k`` taken from the kernel the
    driver would resolve for that shape on *device* -- bit-exact against
    the simulated head.
    """
    q16 = np.ascontiguousarray(q, dtype=np.float16)
    k16 = np.ascontiguousarray(k, dtype=np.float16)
    v16 = np.ascontiguousarray(v, dtype=np.float16)
    seq, d_head = q16.shape
    cfg_scores = resolve_config(kernel, seq, seq, d_head, spec=device)
    scores = hgemm_reference(q16, np.ascontiguousarray(k16.T),
                             w_k=cfg_scores.w_k)
    p = _softmax_rows_f16(scores, 1.0 / np.sqrt(d_head))
    cfg_out = resolve_config(kernel, seq, d_head, seq, spec=device)
    return hgemm_reference(p, v16, w_k=cfg_out.w_k)
