"""Deep-learning workload suite: the paper's motivating layers, first-class.

Section I of the paper motivates HGEMM entirely through deep-learning
layers -- fully-connected layers, convolutions lowered to GEMM, LSTM
cells, BERT's transformer blocks -- but its evaluation only ever runs
square and ``[aW x bW x cW]`` rectangular sweeps.  This package opens
that scenario space on the simulated device:

* :mod:`repro.workloads.batched`   -- batched/strided GEMM: a stack of
  independent problems packed into one :class:`~repro.sim.gpu.Device`
  arena and driven through ``Device.launch`` grid by grid.
* :mod:`repro.workloads.conv`      -- convolution as implicit GEMM: an
  im2col shape mapper plus a functional ``conv2d`` lowered onto
  :func:`repro.core.hgemm`.
* :mod:`repro.workloads.attention` -- attention-shaped problems: the
  tall-skinny ``Q @ K^T`` and rectangular ``P @ V`` GEMMs of one
  transformer head, with the host-side softmax between them.
* :mod:`repro.workloads.suite`     -- the named suite registry
  (``bert``, ``resnet``, ``lstm``, ``layers``, ``smoke``), a functional
  runner that checks every member bit-exactly against the precision
  model, and performance-model estimates for the production shapes.

``repro workloads`` exposes the registry on the command line; the
``workloads`` serve job kind lets a daemon coalesce and cache whole
suite runs.  Suite-wide ``autotune``/``sweep`` entry points live in
:mod:`repro.analysis.suite`.
"""

from .attention import AttentionSpec, attention_head, attention_head_reference
from .batched import (
    BatchedRun,
    hgemm_strided_batched,
    hgemm_strided_batched_reference,
)
from .conv import ConvSpec, conv2d, conv2d_reference, im2col, weights_matrix
from .suite import (
    GemmShape,
    SuiteResult,
    Workload,
    WorkloadResult,
    WorkloadSuite,
    SUITES,
    estimate_suite,
    get_suite,
    run_suite,
    suite_names,
)

__all__ = [
    "AttentionSpec",
    "attention_head",
    "attention_head_reference",
    "BatchedRun",
    "hgemm_strided_batched",
    "hgemm_strided_batched_reference",
    "ConvSpec",
    "conv2d",
    "conv2d_reference",
    "im2col",
    "weights_matrix",
    "GemmShape",
    "SuiteResult",
    "Workload",
    "WorkloadResult",
    "WorkloadSuite",
    "SUITES",
    "estimate_suite",
    "get_suite",
    "run_suite",
    "suite_names",
]
