"""``repro doctor``: health report and self-test of the robustness stack.

The report covers the four robustness surfaces:

* **guard** -- mode, budget, and the process-wide degradation ladder state
  (:func:`repro.robust.guard.degradation_report`);
* **cache** -- location, layer sizes, quarantine count, configured size
  bound;
* **workers** -- CPU count and the supervisor's timeout/retry/backoff
  configuration;
* **chaos** -- any active ``REPRO_CHAOS`` directives (so a forgotten env
  var cannot masquerade as a real fault).

``run_doctor(selftest=True)`` additionally exercises each pillar once:

* a cache round-trip (put/get under a private ``doctor`` subdir) plus a
  deliberate corruption that must read back as a quarantined miss;
* a supervised :func:`~repro.perf.parallel.parallel_map` across two
  workers;
* a tiny guarded functional launch in ``full`` mode, which must pass its
  reference check with no divergence;
* a service round-trip: an in-process daemon on a temporary socket, the
  same tiny GEMM submitted by two concurrent clients, which must run
  **once** (the twin coalesces or hits the shared cache), return
  bit-identical matrices that match an in-process run, and shut down
  cleanly (socket removed).

Everything returns data; the CLI does the printing.
"""

from __future__ import annotations

import os

from ..perf import cache as cache_mod
from ..perf.parallel import default_workers, parallel_map
from ..perf.stats import STATS
from . import chaos, guard

__all__ = ["run_doctor", "format_report"]


def _doctor_square(x):
    """Module-level so the supervised worker self-test can pickle it."""
    return x * x


def _env(name: str, default: str) -> str:
    return os.environ.get(name, "") or default


def _section_guard() -> dict:
    return {
        "mode": guard.guard_mode(),
        "budget": _env("REPRO_GUARD_BUDGET", "0.05 (default)"),
        **guard.degradation_report(),
    }


def _section_cache() -> dict:
    store = cache_mod.PROFILE_CACHE
    max_bytes = cache_mod.cache_max_bytes()
    return {
        "enabled": cache_mod.cache_enabled(),
        "dir": str(cache_mod.cache_dir()),
        "sim_version": cache_mod.SIM_VERSION,
        "disk_entries": store.disk_entries(),
        "disk_bytes": store.disk_bytes(),
        "quarantined": store.quarantined_entries(),
        "max_bytes": max_bytes if max_bytes is not None else "unbounded",
    }


def _section_workers() -> dict:
    return {
        "cpus": default_workers(),
        "task_timeout_s": _env("REPRO_TASK_TIMEOUT", "600 (default)"),
        "task_retries": _env("REPRO_TASK_RETRIES", "2 (default)"),
        "retry_backoff_s": _env("REPRO_RETRY_BACKOFF", "0.25 (default)"),
    }


def _section_chaos() -> dict:
    spec = chaos.directives()
    return {"active": chaos.active(), "directives": spec or "(none)"}


# ------------------------------------------------------------------ selftests

def _selftest_cache() -> str:
    store = cache_mod.ResultCache(subdir="doctor")
    key = cache_mod.content_key(b"doctor-selftest")
    try:
        store.put(key, {"ok": 1})
        store._memory.clear()  # force the disk path
        if store.get(key) != {"ok": 1}:
            return "FAIL: disk round-trip returned a different value"
        # A corrupted entry must quarantine and miss, never surface.
        path = store._path(key)
        if path.is_file():
            with open(path, "r+b") as fh:
                fh.write(b"\x00garbage\x00")
            store._memory.clear()
            if store.get(key) is not None:
                return "FAIL: corrupted entry was served"
            if path.is_file():
                return "FAIL: corrupted entry was not quarantined"
        return "ok"
    except OSError as exc:
        return f"SKIP: cache dir not writable ({exc})"
    finally:
        try:
            store.clear(disk=True)
        except OSError:
            pass


def _selftest_workers() -> str:
    out = parallel_map(_doctor_square, [2, 3], max_workers=2, timeout=60)
    if out != [4, 9]:
        return f"FAIL: supervised map returned {out!r}"
    return "ok"


def _selftest_guard() -> str:
    import numpy as np

    from ..core.hgemm import hgemm, hgemm_reference

    before = STATS.counters.get("guard.divergences", 0)
    rng = np.random.default_rng(7)
    a = rng.standard_normal((64, 16), dtype=np.float32).astype(np.float16)
    b = rng.standard_normal((16, 64), dtype=np.float32).astype(np.float16)
    out = hgemm(a, b, guard="full")
    ref = hgemm_reference(a, b)
    if not np.array_equal(out, ref):
        return "FAIL: guarded hgemm mismatches the NumPy oracle"
    diverged = STATS.counters.get("guard.divergences", 0) - before
    if diverged:
        return f"FAIL: guarded run diverged from the reference engine ({diverged})"
    return "ok"


def _selftest_serve() -> str:
    import tempfile
    import threading

    import numpy as np

    from ..core.hgemm import hgemm
    from ..serve import ServeClient, ServeDaemon
    from ..serve.protocol import decode_payload

    payload = {"m": 64, "n": 64, "k": 16, "kernel": "ours", "seed": 11,
               "return_c": True}
    with tempfile.TemporaryDirectory(prefix="repro-doctor-serve") as tmp:
        sock = os.path.join(tmp, "doctor.sock")
        daemon = ServeDaemon(sock, workers=1)
        daemon.start()
        try:
            # Park the single worker on a noop so both GEMM submissions
            # provably arrive while the key is queued -- the coalescing
            # check is then deterministic, not a race we usually win.
            with ServeClient(sock, tenant="doctor-hold") as holder:
                holder.submit("noop", {"sleep_s": 0.75})
            views, errors = [None, None], []

            def submit(slot):
                try:
                    with ServeClient(sock, tenant=f"doctor-{slot}") as c:
                        views[slot] = c.run("hgemm", payload)
                except Exception as exc:  # noqa: BLE001 - report, not raise
                    errors.append(f"{type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            if errors:
                return f"FAIL: client error ({errors[0]})"
            if any(v is None for v in views):
                return "FAIL: a client never got its result"
            stats = daemon._stats()
            if stats["executed"] != 2:  # the noop holder + ONE simulation
                return (f"FAIL: {stats['executed'] - 1} simulations ran for "
                        "2 identical submissions")
            if stats["coalesced"] != 1:
                return (f"FAIL: twin did not coalesce "
                        f"(coalesced={stats['coalesced']})")
            c0, c1 = (decode_payload(v["result"]["c"]) for v in views)
            if not np.array_equal(c0, c1):
                return "FAIL: coalesced twins returned different matrices"
            rng = np.random.default_rng(payload["seed"])
            a = rng.uniform(-1, 1, (64, 16)).astype(np.float16)
            b = rng.uniform(-1, 1, (16, 64)).astype(np.float16)
            if not np.array_equal(c0, hgemm(a, b, kernel="ours")):
                return "FAIL: served result differs from an in-process run"
        finally:
            daemon.stop()
        if os.path.exists(sock):
            return "FAIL: daemon left its socket behind"
    return "ok"


def run_doctor(selftest: bool = True):
    """Collect the health report; returns ``(report_dict, all_ok)``."""
    report = {
        "guard": _section_guard(),
        "cache": _section_cache(),
        "workers": _section_workers(),
        "chaos": _section_chaos(),
    }
    ok = True
    if selftest:
        results = {
            "cache_roundtrip": _selftest_cache(),
            "supervised_map": _selftest_workers(),
            "guarded_run": _selftest_guard(),
            "serve_coalesce": _selftest_serve(),
        }
        ok = not any(v.startswith("FAIL") for v in results.values())
        report["selftest"] = results
    return report, ok


def format_report(report: dict) -> str:
    """Render the report as aligned ``section.key  value`` lines."""
    lines = []
    for section, entries in report.items():
        for key, value in entries.items():
            lines.append(f"{section + '.' + key:<28s} {value}")
    return "\n".join(lines)
