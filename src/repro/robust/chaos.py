"""Deterministic fault injection (``REPRO_CHAOS``).

The robustness pillars -- the divergence watchdog, the supervised worker
pool and the cache integrity layer -- all exist to survive failures that
are rare and hard to reproduce.  This module makes those failures *cheap*
to reproduce: every directive is deterministic (no randomness, no wall
clock), so a chaos run either recovers bit-identically to a fault-free
run or fails the same way every time.

``REPRO_CHAOS`` is a comma-separated list of ``name:value`` directives:

``crash_task:N``
    The supervised worker that picks up task *N* (first attempt only)
    dies with ``os._exit`` before running it.  The retry runs clean, so
    the supervisor's recovery path is exercised exactly once per pool.
``crash_task_always:N``
    Every worker attempt at task *N* dies -- exhausts the retry budget
    and forces the supervisor's in-process serial last rung.  The serial
    rung never consults this directive (it models worker-side death).
``delay_task:N`` (with optional ``delay_seconds:S``, default 5)
    The worker sleeps *S* seconds before running task *N*'s first
    attempt, tripping the per-task timeout; the retry runs clean.
``corrupt_entry:K``
    The *K*-th cache entry written to disk by this process is corrupted
    in place after the atomic rename, so the next cold read must detect
    it (checksum mismatch -> quarantine + miss).
``flip_output:C``
    Flips one bit of the simulated memory image after each of the first
    *C* guarded engine runs -- a synthetic fast-engine bug for the
    divergence watchdog to catch.  Only fires on runs the guard is
    watching, so it never silently corrupts unguarded results.

Counters (how many times a directive has fired) are per-process; worker
processes inherit the environment and start their own counters, which is
what makes ``crash_task`` crash each supervised pool at most once per
worker generation.  :func:`reset` clears the counters for tests.
"""

from __future__ import annotations

import os
import time

__all__ = [
    "active",
    "directives",
    "reset",
    "maybe_crash_worker",
    "maybe_delay_task",
    "maybe_corrupt_entry",
    "maybe_flip_output",
]

_ENV = "REPRO_CHAOS"

#: Per-process fire counts, keyed by directive name.
_fired: dict = {}


def active() -> bool:
    """True when any chaos directive is set in the environment."""
    return bool(os.environ.get(_ENV, ""))


def directives() -> dict:
    """Parsed ``REPRO_CHAOS`` spec: ``{name: value-string}``.

    Parsed on every call (it is a handful of string splits) so tests can
    flip the environment without touching module state.
    """
    raw = os.environ.get(_ENV, "")
    out = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition(":")
        out[name.strip()] = value.strip()
    return out


def reset() -> None:
    """Clear the per-process fire counters (test isolation)."""
    _fired.clear()


def _int(value: str, default: int = -1) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


# ------------------------------------------------------------ worker faults

def should_crash(task_id: int, attempt: int) -> bool:
    """Decision half of :func:`maybe_crash_worker`, separated for tests."""
    spec = directives()
    if _int(spec.get("crash_task_always")) == task_id:
        return True
    return attempt == 0 and _int(spec.get("crash_task")) == task_id


def maybe_crash_worker(task_id: int, attempt: int) -> None:
    """Die abruptly (``os._exit``) if a crash directive targets this task.

    Called from the supervised worker loop *before* the task function, so
    a crash models an OOM kill / segfault mid-task, not a Python
    exception (those propagate through the normal error channel).
    """
    if should_crash(task_id, attempt):
        os._exit(13)


def maybe_delay_task(task_id: int, attempt: int) -> None:
    """Sleep past the per-task timeout if a delay directive targets us."""
    spec = directives()
    if attempt == 0 and _int(spec.get("delay_task")) == task_id:
        try:
            seconds = float(spec.get("delay_seconds", 5.0) or 5.0)
        except ValueError:
            seconds = 5.0
        time.sleep(seconds)


# ------------------------------------------------------------- cache faults

def maybe_corrupt_entry(path) -> bool:
    """Corrupt the on-disk entry at *path* if it is the targeted store.

    Counts every disk store this process performs; when the count matches
    ``corrupt_entry:K`` the file's leading bytes are overwritten so the
    envelope checksum can no longer verify.  Returns True when it fired.
    """
    target = _int(directives().get("corrupt_entry"))
    if target < 0:
        return False
    index = _fired.get("corrupt_entry", 0)
    _fired["corrupt_entry"] = index + 1
    if index != target:
        return False
    try:
        with open(path, "r+b") as fh:
            fh.write(b"\x00CHAOS\x00")
    except OSError:
        return False
    return True


# ------------------------------------------------------------ engine faults

def maybe_flip_output(words) -> bool:
    """Flip one bit of a guarded run's memory image (``flip_output:C``).

    *words* is the simulator's uint32 memory view; the flipped word sits
    a third of the way in, away from both the zero-filled tail and any
    operand region at offset 0.  Fires at most *C* times per process.
    """
    count = _int(directives().get("flip_output"), 0)
    if count <= 0:
        return False
    fired = _fired.get("flip_output", 0)
    if fired >= count:
        return False
    _fired["flip_output"] = fired + 1
    words[len(words) // 3] ^= 1
    return True
