"""Runtime guard rails for the simulation stack.

Three pillars, each defending a different invariant at *run* time (the
test suite pins them at test time, but a long-running service cannot
assume every fast path, worker process or disk cache entry stays sound):

* :mod:`repro.robust.guard` -- the divergence watchdog.  Opt-in
  (``REPRO_GUARD=off|sample|full`` or ``PerfOptions.guard``) re-execution
  of runs on the ``reference`` engines, digest comparison, reproducer
  bundles under ``$REPRO_CACHE_DIR/divergence/`` and graceful degradation
  down the engine ladder instead of crashing.
* :mod:`repro.robust.chaos` -- deterministic fault injection
  (``REPRO_CHAOS``): crash a worker, delay a task, corrupt a cache entry,
  flip an engine output bit.  Drives the robustness test suite and the CI
  chaos leg.
* :mod:`repro.robust.doctor` -- the ``repro doctor`` subcommand: reports
  guard / cache / worker health and runs a small self-test of each pillar.

Submodules are imported on demand (``from repro.robust import guard``)
rather than here: :mod:`repro.perf` imports the chaos layer, and keeping
this package ``__init__`` empty of imports keeps the import graph acyclic.
"""

__all__ = ["chaos", "guard", "doctor"]
