"""Divergence watchdog: runtime re-validation against the reference engines.

The fast engines (functional gridlock/lockstep/predecoded, the event
timing engine, steady-state fast-forward) are pinned bit-identical to the
reference implementations by goldens and differential fuzz -- *at test
time*.  A long-running service cannot assume that invariant survives every
input forever, and silent numeric divergence is the failure mode a tensor
core model must fear most.  This watchdog defends the invariant at run
time:

* **Modes** (``REPRO_GUARD`` or a per-simulator ``guard=`` override /
  ``PerfOptions.guard``): ``off`` (default, zero overhead), ``sample``
  (overhead-bounded sampling, see below) and ``full`` (every fast run is
  re-executed).
* **Check**: before a guarded run the memory image is snapshotted; after
  it, the run may be re-executed on the ``reference`` engine from the
  snapshot and compared -- the whole memory image plus the result object
  (``FunctionalResult`` / ``TimingResult`` observables).
* **On divergence**: a reproducer bundle (program bytes, run context,
  digests, initial memory) is written to ``$REPRO_CACHE_DIR/divergence/``,
  the process degrades one rung down the engine ladder, the reference
  result (and memory) replaces the bad one, and the run *completes
  correctly* -- callers never see the divergence, only the ``guard.*``
  counters and the slower rung do.

**Degradation ladders** (process-wide, monotone):

* functional: ``gridlock -> lockstep -> predecoded -> reference``
* timing: ``event(+fast-forward) -> event(REPRO_TIMING_FF off) ->
  reference``

**Sampling** is wall-clock-budgeted rather than every-Nth: the guard
tracks the accumulated wall of guarded fast runs and of its own reference
re-runs, and verifies a run only while the re-run budget
(``REPRO_GUARD_BUDGET``, default 5% of accumulated fast wall) stays
unspent.  The reference engines are several times slower than the fast
paths, so a fixed 1-in-N rate would cost whatever the slowdown happens to
be; the budget form bounds overhead by construction and adapts the check
rate to however expensive the checks turn out.  ``full`` mode ignores the
budget.

STATS counters: ``guard.checks`` (reference re-executions),
``guard.divergences`` (mismatches caught), ``guard.degraded`` (ladder
steps taken).
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import numpy as np

from ..perf.cache import SIM_VERSION, cache_dir
from ..perf.stats import STATS

__all__ = [
    "MODES",
    "FUNC_LADDER",
    "guard_mode",
    "effective_func_engine",
    "effective_timing_engine",
    "ff_allowed",
    "degradation_report",
    "reset",
    "GuardContext",
]

_ENV_MODE = "REPRO_GUARD"
_ENV_BUDGET = "REPRO_GUARD_BUDGET"

MODES = ("off", "sample", "full")

#: Functional engine ladder, fastest first.  A divergence on one rung
#: degrades the process to the next; ``reference`` is never guarded.
FUNC_LADDER = ("gridlock", "lockstep", "predecoded", "reference")

#: Process-wide watchdog state.  ``func_cap`` / ``timing_ref`` / ``ff_off``
#: implement the monotone degradation ladders; the wall accumulators and
#: the learned check/run cost ratio drive the sampling budget.
_state = {
    "func_cap": 0,        # minimum FUNC_LADDER index new runs may use
    "ff_off": False,      # timing rung 1: force REPRO_TIMING_FF off
    "timing_ref": False,  # timing rung 2: force the reference engine
    "total_wall": 0.0,    # accumulated guarded fast-run wall (seconds)
    "guard_wall": 0.0,    # accumulated reference re-run wall (seconds)
    "ratio": 4.0,         # learned (re-run wall / fast wall) estimate
    "bundles": 0,         # reproducer bundles written by this process
}


def reset() -> None:
    """Forget all degradation and sampling state (test isolation)."""
    _state.update(func_cap=0, ff_off=False, timing_ref=False,
                  total_wall=0.0, guard_wall=0.0, ratio=4.0, bundles=0)


def guard_mode(override: str = None) -> str:
    """Resolve the guard mode: explicit override, else ``REPRO_GUARD``."""
    mode = override if override is not None else os.environ.get(_ENV_MODE, "off")
    if mode not in MODES:
        raise ValueError(f"guard mode must be one of {MODES}, got {mode!r}")
    return mode


# --------------------------------------------------------------- degradation

def effective_func_engine(engine: str) -> str:
    """The functional engine actually allowed to run *engine*'s request.

    Degradation only ever moves runs toward ``reference``; a request that
    is already at or below the degraded rung is unchanged.
    """
    if engine not in FUNC_LADDER:
        return engine
    return FUNC_LADDER[max(FUNC_LADDER.index(engine), _state["func_cap"])]


def effective_timing_engine(engine: str) -> str:
    """The timing engine allowed to run *engine*'s request."""
    if _state["timing_ref"]:
        return "reference"
    return engine


def ff_allowed() -> bool:
    """False once the watchdog has degraded steady-state fast-forward off."""
    return not _state["ff_off"]


def _degrade(kind: str, engine: str) -> None:
    if kind == "functional":
        rung = FUNC_LADDER.index(engine) if engine in FUNC_LADDER else 0
        _state["func_cap"] = max(_state["func_cap"],
                                 min(rung + 1, len(FUNC_LADDER) - 1))
    elif not _state["ff_off"]:
        _state["ff_off"] = True
    else:
        _state["timing_ref"] = True
    STATS.count("guard.degraded")


def degradation_report() -> dict:
    """Current watchdog state for ``repro doctor`` and tests."""
    return {
        "func_engine_floor": FUNC_LADDER[_state["func_cap"]],
        "timing_fast_forward": "off (degraded)" if _state["ff_off"] else "allowed",
        "timing_engine_floor": "reference" if _state["timing_ref"] else "event",
        "bundles_written": _state["bundles"],
        "guarded_wall_s": round(_state["total_wall"], 4),
        "check_wall_s": round(_state["guard_wall"], 4),
    }


# ------------------------------------------------------------------ sampling

def _budget() -> float:
    try:
        return float(os.environ.get(_ENV_BUDGET, "") or 0.05)
    except ValueError:
        return 0.05


def _decide(mode: str, run_wall: float) -> bool:
    """Should this guarded run be verified right now?

    ``full`` always verifies.  ``sample`` verifies while the estimated
    cost of one more check keeps total check wall within the budget
    fraction of all guarded wall (fast runs plus the check itself) --
    self-limiting whatever the reference-engine slowdown is.
    """
    if mode == "full":
        return True
    est = _state["ratio"] * max(run_wall, 1e-9)
    return (_state["guard_wall"] + est
            <= _budget() * (_state["total_wall"] + est))


# ------------------------------------------------------------------- bundles

def _digest(words: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(words).tobytes()).hexdigest()


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def _write_bundle(kind: str, engine: str, program, pre_words, fast_words,
                  ref_words, fast_result, ref_result, context: dict):
    """Persist everything needed to replay a divergence offline.

    Best-effort: a read-only filesystem must not turn a *handled*
    divergence into a crash, so every OSError is swallowed.
    """
    from ..isa.encoding import encode_program

    try:
        program_bytes = bytes(encode_program(program))
    except Exception:
        program_bytes = b""
    name = f"{kind}-{_digest(pre_words)[:12]}-{_state['bundles']:03d}"
    root = cache_dir() / "divergence" / name
    meta = {
        "kind": kind,
        "engine": engine,
        "sim_version": SIM_VERSION,
        "context": {k: _jsonable(v) for k, v in context.items()},
        "digests": {
            "memory_pre": _digest(pre_words),
            "memory_fast": _digest(fast_words),
            "memory_reference": _digest(ref_words),
        },
        "fast_result": _jsonable(_summarize(fast_result)),
        "reference_result": _jsonable(_summarize(ref_result)),
        "env": {k: v for k, v in os.environ.items()
                if k.startswith("REPRO_")},
    }
    try:
        root.mkdir(parents=True, exist_ok=True)
        (root / "program.bin").write_bytes(program_bytes)
        (root / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        with open(root / "memory_pre.npz", "wb") as fh:
            np.savez_compressed(fh, words=pre_words)
    except OSError:
        return None
    _state["bundles"] += 1
    return root


def _summarize(result) -> dict:
    """Result observables worth recording in a bundle, class-agnostic."""
    out = {}
    for field in ("cycles", "instructions", "instructions_retired",
                  "opcode_counts", "ctas_run", "pipe_busy",
                  "issue_stall_reasons"):
        if hasattr(result, field):
            out[field] = getattr(result, field)
    return out or {"repr": repr(result)}


# ------------------------------------------------------------ guard context

class GuardContext:
    """One guarded run: snapshot at construction, verdict at ``conclude``.

    Construct only when the mode is not ``off`` and the engine is not
    ``reference`` (the reference engines are the ground truth; guarding
    them would be circular).
    """

    def __init__(self, kind: str, engine: str, mode: str, words: np.ndarray):
        self.kind = kind
        self.engine = engine
        self.mode = mode
        self.pre = np.array(words, copy=True)
        self._start = time.perf_counter()

    def conclude(self, words: np.ndarray, result, rerun, program=None,
                 context: dict = None):
        """Maybe verify the finished run; heal and degrade on divergence.

        *rerun* is a zero-argument callable executing the same run on the
        reference engine against a fresh copy of :attr:`pre`, returning
        ``(reference_result, reference_words)``.  Returns the result the
        caller should report: the fast one when the run is unchecked or
        checked-identical, the reference one (with *words* healed in
        place) on divergence.
        """
        run_wall = time.perf_counter() - self._start
        _state["total_wall"] += run_wall
        if not _decide(self.mode, run_wall):
            return result
        STATS.count("guard.checks")
        check_start = time.perf_counter()
        ref_result, ref_words = rerun()
        check_wall = time.perf_counter() - check_start
        _state["guard_wall"] += check_wall
        if run_wall > 1e-9:
            observed = check_wall / run_wall
            _state["ratio"] = 0.5 * _state["ratio"] + 0.5 * observed
        if np.array_equal(words, ref_words) and result == ref_result:
            return result
        STATS.count("guard.divergences")
        _write_bundle(self.kind, self.engine, program, self.pre, words,
                      ref_words, result, ref_result, context or {})
        _degrade(self.kind, self.engine)
        np.copyto(words, ref_words)
        return ref_result
