"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``      regenerate the paper's Tables I-VII
``roofline``    print the Fig. 3 roofline story
``sweep``       run a Fig. 6/7-style square sweep on one device
``hgemm``       run one simulated GEMM and verify it
``igemm``       run one simulated int8 GEMM (IMMA.8816) and verify it
``autotune``    pick the best kernel configuration for a problem
``devices``     list registered devices and their Tensor Core generations
``disasm``      generate an HGEMM kernel and print its SASS listing
``perfstats``   profile kernels and report simulator/cache statistics
``doctor``      report robustness health (guard/cache/workers) + self-test
``serve``       run/manage the simulation-service daemon
``workloads``   deep-learning workload suites: run / estimate / autotune
``numerics``    mixed-precision error curves (FP16 vs FP32 accumulate)

``hgemm``/``igemm``/``sweep``/``autotune``/``verify``/``workloads``/
``numerics`` accept ``--remote [SOCKET]``: the work is submitted to a
``repro serve`` daemon (sharing its hot cache and coalescing with other
tenants) and falls back to in-process execution, with a stderr note,
when no daemon is reachable.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


# ------------------------------------------------------- remote plumbing

def _resolve_remote(args):
    """Daemon socket to use, or None for in-process execution.

    ``--remote`` without a path means the default socket.  An unreachable
    daemon degrades to in-process execution with a stderr note -- the
    command still succeeds, it just pays full price.
    """
    if getattr(args, "remote", None) is None:
        return None
    from .serve import daemon_available, default_socket

    path = args.remote or default_socket()
    if daemon_available(path):
        return path
    print(f"warning: no daemon reachable at {path}; running in-process",
          file=sys.stderr)
    return None


def _remote_run(remote: str, kind: str, payload: dict):
    """Submit one job and wait; None (after a stderr note) on job failure."""
    from .serve import JobFailed, ServeClient

    with ServeClient(remote) as client:
        try:
            return client.run(kind, payload)
        except JobFailed as exc:
            print(f"error: daemon job failed: {exc}", file=sys.stderr)
            return None


def _job_origin(view: dict) -> str:
    if view.get("cached"):
        return "cache hit"
    if view.get("coalesced"):
        return "coalesced"
    return "executed"


def _remote_sweep(remote, spec, sizes, jobs):
    """Both sweep legs (ours, cuBLAS-quirks) as one daemon batch."""
    from .core import cublas_like, ours
    from .serve import ServeClient
    from .serve.jobs import config_to_dict, spec_to_dict

    spec_d = spec_to_dict(spec)

    def payload(config, quirks):
        p = {"spec": spec_d, "config": config_to_dict(config),
             "sizes": list(sizes), "baseline_quirks": quirks}
        if jobs is not None:
            p["jobs"] = jobs
        return p

    with ServeClient(remote) as client:
        views = client.batch_submit([
            {"kind": "sweep", "payload": payload(ours(), False)},
            {"kind": "sweep", "payload": payload(cublas_like(), True)},
        ])
        series = []
        for view in views:
            if view["state"] not in ("done", "failed"):
                view = client.wait(view["job_id"])
            if view["state"] == "failed":
                print("error: daemon job failed: "
                      f"{view.get('error')}", file=sys.stderr)
                return None
            series.append([e["tflops"]
                           for e in view["result"]["estimates"]])
    return series


def _cmd_tables(args) -> int:
    from .arch import RTX2070, T4
    from .analysis import table7
    from .bench import (
        measure_dram_bandwidth, measure_hmma_cpi, measure_hmma_latency,
        measure_l2_bandwidth, measure_ldg_cpi, measure_lds_cpi,
        measure_sts_cpi, smem_throughput_bytes_per_cycle,
    )
    from .core import cublas_like, ours
    from .core.blocking import table6_rows
    from .report import format_table

    print("Table I: HMMA.1688.F16")
    cpi = measure_hmma_cpi(RTX2070)
    lat = measure_hmma_latency(RTX2070)
    print(format_table(["metric", "paper", "measured"], [
        ("CPI measured", 8.06, round(cpi.cpi, 2)),
        ("latency first half", 10, lat.first_half),
        ("latency second half", 14, lat.second_half),
    ]))

    print("\nTable II: bandwidth (GB/s)")
    rows = []
    for spec in (RTX2070, T4):
        rows.append((spec.name, round(measure_dram_bandwidth(spec).gbps, 1),
                     round(measure_l2_bandwidth(spec).gbps, 1)))
    print(format_table(["device", "DRAM", "L2"], rows))

    print("\nTable III: LDG CPI")
    rows = []
    for level in ("l1", "l2"):
        rows.append((level.upper(),) + tuple(
            round(measure_ldg_cpi(RTX2070, w, level).cpi, 2)
            for w in (32, 64, 128)))
    print(format_table(["level", "32", "64", "128"], rows))

    print("\nTables IV-V: shared memory CPI / bytes-per-cycle")
    rows = []
    for op, fn in (("LDS", measure_lds_cpi), ("STS", measure_sts_cpi)):
        results = [fn(RTX2070, w) for w in (32, 64, 128)]
        rows.append((op + " CPI",) + tuple(round(r.cpi, 2) for r in results))
        rows.append((op + " B/cyc",) + tuple(
            round(smem_throughput_bytes_per_cycle(r, w), 2)
            for r, w in zip(results, (32, 64, 128))))
    print(format_table(["metric", "32", "64", "128"], rows))

    print("\nTable VI: pipe cycles per iteration")
    rows = [(f"{c[0]}x{c[1]}x{c[2]}", f"{w[0]}x{w[1]}", round(h), round(m))
            for c, w, h, m in table6_rows(RTX2070)]
    print(format_table(["CTA tile", "warp tile", "HMMA", "memory IO"], rows))

    print("\nTable VII: kernel details")
    rows = [(r["kernel"], "x".join(map(str, r["cta_tile"])),
             f"{r['smem_per_cta_kb']:.0f} KB", r["ctas_per_sm"],
             r["warps_per_sm"]) for r in table7(ours(), cublas_like(), RTX2070)]
    print(format_table(["kernel", "CTA tile", "smem", "CTAs/SM", "warps/SM"],
                       rows))
    return 0


def _cmd_roofline(args) -> int:
    from .arch import get_device
    from .analysis import Roofline
    from .core import cublas_like, ours
    from .report import format_table

    spec = get_device(args.device)
    roof = Roofline(spec)
    rows = []
    for cfg in (cublas_like(), ours()):
        point = roof.evaluate_blocking(cfg)
        rows.append((cfg.name, cfg.compute_intensity,
                     round(point.tensor_tflops, 1),
                     "memory" if point.memory_bound_tensor else "compute"))
    print(format_table(["blocking", "FLOP/B", "attainable TFLOPS", "bound"],
                       rows, title=f"Roofline on {spec.name} "
                                   f"(DRAM {spec.dram_measured_gbps} GB/s)"))
    print(f"Tensor Core ridge: {roof.ridge_intensity():.0f} FLOP/B; "
          f"FP16-unit ridge: {roof.ridge_intensity(False):.0f} FLOP/B")
    return 0


def _cmd_sweep(args) -> int:
    from .arch import get_device
    from .analysis import PerformanceModel
    from .core import cublas_like, ours
    from .report import ascii_chart, format_series

    spec = get_device(args.device)
    sizes = list(range(args.start, args.stop + 1, args.step))
    remote = _resolve_remote(args)
    if remote is not None:
        print(f"submitting sweeps to daemon at {remote}...", file=sys.stderr)
        series = _remote_sweep(remote, spec, sizes, args.jobs)
        if series is None:
            return 1
        o, c = series
    else:
        pm = PerformanceModel(spec)
        print(f"simulating SM profiles for {spec.name}...", file=sys.stderr)
        pm.profile_many([ours(), cublas_like()], max_workers=args.jobs)
        o = [e.tflops for e in pm.sweep(ours(), sizes,
                                        max_workers=args.jobs)]
        c = [e.tflops for e in pm.sweep(cublas_like(), sizes,
                                        baseline_quirks=True,
                                        max_workers=args.jobs)]
    print(format_series(sizes, {"ours": [round(v, 1) for v in o],
                                "cuBLAS": [round(v, 1) for v in c]}))
    print(ascii_chart(sizes, {"ours": o, "cuBLAS": c}))
    speedups = [a / b for a, b in zip(o, c)]
    print(f"avg speedup {sum(speedups) / len(speedups):.2f}, "
          f"max {max(speedups):.2f}")
    return 0


def _gemm_view_exit(view: dict, opcode: str, oracle: str) -> int:
    r = view["result"]
    counters = (view.get("stats") or {}).get("counters") or {}
    print(f"kernel: {r['describe']}")
    print(f"instructions: {r['instructions']} ({r['mma']} {opcode}), "
          f"CTAs: {r['ctas']}")
    print(f"bit-exact vs {oracle}: {r['exact']}")
    print(f"served by daemon: {_job_origin(view)} "
          f"(job {view['job_id']}, "
          f"{counters.get('func.instructions', 0)} instructions charged "
          "to this request)")
    return 0 if r["exact"] else 1


def _cmd_hgemm(args) -> int:
    from .arch import get_device
    from .core import hgemm, hgemm_reference

    spec = get_device(args.device)
    remote = _resolve_remote(args)
    if remote is not None:
        from .serve.jobs import spec_to_dict

        payload = {"m": args.m, "n": args.n, "k": args.k,
                   "kernel": args.kernel, "accumulate": args.accumulate,
                   "seed": args.seed, "spec": spec_to_dict(spec)}
        if args.jobs is not None:
            payload["jobs"] = args.jobs
        if args.func_engine is not None:
            payload["engine"] = args.func_engine
        view = _remote_run(remote, "hgemm", payload)
        if view is None:
            return 1
        return _gemm_view_exit(view, "HMMA", "precision model")

    rng = np.random.default_rng(args.seed)
    a = rng.uniform(-1, 1, (args.m, args.k)).astype(np.float16)
    b = rng.uniform(-1, 1, (args.k, args.n)).astype(np.float16)
    run = hgemm(a, b, kernel=args.kernel, spec=spec,
                accumulate=args.accumulate,
                return_run=True, max_workers=args.jobs,
                engine=args.func_engine)
    reference = hgemm_reference(a, b, w_k=run.config.w_k,
                                accumulate=args.accumulate)
    exact = np.array_equal(run.c, reference)
    print(f"device: {spec.name} ({spec.arch.name}, SM{spec.arch.sm_version})")
    print(f"kernel: {run.config.describe()}")
    print(f"instructions: {run.stats.instructions_retired} "
          f"({run.stats.opcode_counts.get('HMMA', 0)} HMMA), "
          f"CTAs: {run.stats.ctas_run}")
    print(f"bit-exact vs precision model: {exact}")
    return 0 if exact else 1


def _cmd_igemm(args) -> int:
    from .arch import get_device
    from .core import igemm, igemm_reference

    spec = get_device(args.device)
    remote = _resolve_remote(args)
    if remote is not None:
        from .serve.jobs import spec_to_dict

        payload = {"m": args.m, "n": args.n, "k": args.k, "seed": args.seed,
                   "spec": spec_to_dict(spec)}
        if args.jobs is not None:
            payload["jobs"] = args.jobs
        if args.func_engine is not None:
            payload["engine"] = args.func_engine
        view = _remote_run(remote, "igemm", payload)
        if view is None:
            return 1
        return _gemm_view_exit(view, "IMMA", "int8 oracle")

    rng = np.random.default_rng(args.seed)
    a = rng.integers(-128, 128, (args.m, args.k), dtype=np.int8)
    b = rng.integers(-128, 128, (args.k, args.n), dtype=np.int8)
    run = igemm(a, b, return_run=True, spec=spec, max_workers=args.jobs,
                engine=args.func_engine)
    reference = igemm_reference(a, b)
    exact = np.array_equal(run.c, reference)
    print(f"kernel: {run.config.describe()}")
    print(f"instructions: {run.stats.instructions_retired} "
          f"({run.stats.opcode_counts.get('IMMA', 0)} IMMA), "
          f"CTAs: {run.stats.ctas_run}")
    print(f"bit-exact vs int8 oracle: {exact}")
    return 0 if exact else 1


def _cmd_autotune(args) -> int:
    from .arch import get_device
    from .analysis import autotune

    spec = get_device(args.device)
    remote = _resolve_remote(args)
    if remote is not None:
        from .serve.jobs import spec_to_dict

        payload = {"spec": spec_to_dict(spec), "m": args.m, "n": args.n,
                   "k": args.k, "accum_f32": args.accumulate == "f32"}
        if args.jobs is not None:
            payload["jobs"] = args.jobs
        view = _remote_run(remote, "autotune", payload)
        if view is None:
            return 1
        print(view["result"]["summary"])
        print(f"served by daemon: {_job_origin(view)} "
              f"(job {view['job_id']})")
        return 0

    result = autotune(spec, args.m, args.n, args.k,
                      accum_f32=args.accumulate == "f32",
                      max_workers=args.jobs)
    print(result.summary())
    return 0


def _cmd_perfstats(args) -> int:
    from .analysis import PerfOptions, PerformanceModel
    from .arch import get_device
    from .core import cublas_like, hgemm, ours
    from .perf import PROFILE_CACHE, STATS, cache_dir, cache_enabled

    spec = get_device(args.device)
    kernels = {"ours": [ours()], "cublas": [cublas_like()],
               "both": [ours(), cublas_like()]}
    options = PerfOptions(timing_engine=args.timing_engine,
                          func_engine=args.func_engine)
    STATS.reset()
    pm = PerformanceModel(spec, options)
    with STATS.timer("perfstats.wall"):
        profiles = pm.profile_many(kernels[args.kernel],
                                   max_workers=args.jobs)
        # One functional launch per kernel so the func.* counters
        # (CTAs, retired instructions, worker fan-out) have data too.
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (256, 32)).astype(np.float16)
        b = rng.uniform(-1, 1, (32, 256)).astype(np.float16)
        for name in ("ours", "cublas"):
            if args.kernel in (name, "both"):
                hgemm(a, b, kernel=name, spec=spec, max_workers=args.jobs,
                      engine=options.func_engine)
    state = ("enabled" if cache_enabled()
             else "DISABLED (REPRO_NO_CACHE set)")
    print(f"result cache: {state}")
    print(f"cache dir:    {cache_dir()} "
          f"({PROFILE_CACHE.disk_entries()} profile entries on disk)")
    for cfg, profile in zip(kernels[args.kernel], profiles):
        print(f"{cfg.name}: {profile.marginal_cycles:.1f} cycles/iter "
              f"+ {profile.fixed_cycles:.0f} fixed "
              f"({profile.ctas_per_sm} CTAs/SM)")
    print(STATS.report())
    return 0


def _cmd_analyze(args) -> int:
    from .arch import get_device
    from .analysis import PerformanceModel, explain, sweep_transitions
    from .core import cublas_like, ours

    spec = get_device(args.device)
    pm = PerformanceModel(spec)
    kernels = {"ours": ours(), "cublas": cublas_like()}
    config = kernels[args.kernel]
    quirks = args.kernel == "cublas"

    est = pm.estimate(config, args.m, args.n, args.k,
                      baseline_quirks=quirks)
    breakdown = explain(est)
    print(f"{config.name} @ {args.m}x{args.n}x{args.k} on {spec.name}: "
          f"{est.tflops:.1f} TFLOPS")
    print(breakdown.verdict())
    print(f"waves: {est.waves} of {est.concurrent_ctas} CTAs; wave window "
          f"{est.wave_rows} x {est.wave_cols} tiles"
          + (";  cuBLAS L2-blocking cliff ACTIVE" if est.cliff_active else ""))

    sizes = list(range(2048, 16385, 2048))
    segments = sweep_transitions(pm, config, sizes, baseline_quirks=quirks)
    print("\nbound transitions over the square sweep:")
    for first, last, bound in segments:
        print(f"  W {first}..{last}: {bound}-bound")
    return 0


def _cmd_verify(args) -> int:
    from .arch import get_device
    from .core import cublas_like, ours, ours_f32, ours_int8, verify_kernel
    from .core.config import adapt_for_arch

    spec = get_device(args.device)
    presets = {"ours": ours, "cublas": cublas_like, "f32": ours_f32,
               "int8": ours_int8}
    config = presets[args.kernel]()
    # Shrink to a test-grid-friendly size: the harness skips shapes the
    # config cannot tile, so verify a small member of the family (b_k is
    # two native k-slices so the software pipeline still has work).
    f16_bk = 2 * spec.arch.hmma_k
    config = config.with_(
        b_m=64, b_n=64, b_k=32 if config.ab_dtype == "s8" else f16_bk,
        w_m=min(config.w_m, 32), w_n=min(config.w_n, 32),
        smem_swizzle=False,
        smem_pad_halves=8 if not config.smem_swizzle else 8,
    )
    config = adapt_for_arch(config, spec.arch)
    remote = _resolve_remote(args)
    if remote is not None:
        from .serve.jobs import config_to_dict, spec_to_dict

        payload = {"config": config_to_dict(config), "seeds": args.seeds,
                   "spec": spec_to_dict(spec)}
        if args.jobs is not None:
            payload["jobs"] = args.jobs
        if args.func_engine is not None:
            payload["engine"] = args.func_engine
        view = _remote_run(remote, "verify", payload)
        if view is None:
            return 1
        print(view["result"]["summary"])
        print(f"served by daemon: {_job_origin(view)} "
              f"(job {view['job_id']})")
        return 0 if view["result"]["passed"] else 1

    report = verify_kernel(config, seeds=tuple(range(args.seeds)),
                           spec=spec, max_workers=args.jobs,
                           engine=args.func_engine)
    print(report.summary())
    return 0 if report.passed else 1


def _cmd_workloads(args) -> int:
    from .arch import get_device

    if args.action == "list":
        from .workloads import SUITES

        for name in sorted(SUITES):
            suite = SUITES[name]
            print(f"{name}: {suite.description}")
            for w in suite.workloads:
                shapes = ", ".join(p.describe() for p in w.problems("sim"))
                print(f"  {w.name} ({w.kind}): sim {shapes}")
        return 0

    spec = get_device(args.device)
    # Functional runs default to the small simulator-friendly shapes;
    # model-side actions default to the production shapes.
    scale = args.scale or ("sim" if args.action == "run" else "full")
    if args.action == "run":
        remote = _resolve_remote(args)
        if remote is not None:
            from .serve.jobs import spec_to_dict

            payload = {"suite": args.suite, "spec": spec_to_dict(spec),
                       "scale": scale, "kernel": args.kernel,
                       "seed": args.seed}
            if args.jobs is not None:
                payload["jobs"] = args.jobs
            if args.func_engine is not None:
                payload["engine"] = args.func_engine
            view = _remote_run(remote, "workloads", payload)
            if view is None:
                return 1
            print(view["result"]["summary"])
            print(f"served by daemon: {_job_origin(view)} "
                  f"(job {view['job_id']})")
            return 0 if view["result"]["passed"] else 1

        from .workloads import run_suite

        result = run_suite(args.suite, spec=spec, scale=scale,
                           kernel=args.kernel, seed=args.seed,
                           max_workers=args.jobs, engine=args.func_engine)
        print(result.summary())
        return 0 if result.passed else 1

    if args.action == "estimate":
        from .analysis import sweep_suite
        from .workloads.suite import format_estimates

        rows = sweep_suite(args.suite, spec, scale=scale,
                           max_workers=args.jobs)
        print(format_estimates(rows, spec))
        return 0

    # args.action == "autotune"
    from .analysis import autotune_suite, format_suite_tuning

    rows = autotune_suite(args.suite, spec, scale=scale,
                          accum_f32=args.accumulate == "f32",
                          max_workers=args.jobs)
    print(format_suite_tuning(rows, spec))
    return 0


def _cmd_numerics(args) -> int:
    from .arch import get_device

    spec = get_device(args.device)
    ks = tuple(int(k) for k in args.ks.split(",")) if args.ks else None
    remote = _resolve_remote(args)
    if remote is not None:
        from .serve.jobs import spec_to_dict

        payload = {"spec": spec_to_dict(spec),
                   "distribution": args.distribution, "m": args.m,
                   "n": args.n, "seed": args.seed}
        if ks:
            payload["ks"] = list(ks)
        if args.jobs is not None:
            payload["jobs"] = args.jobs
        if args.func_engine is not None:
            payload["engine"] = args.func_engine
        view = _remote_run(remote, "numerics", payload)
        if view is None:
            return 1
        print(view["result"]["summary"])
        print(f"served by daemon: {_job_origin(view)} "
              f"(job {view['job_id']})")
        return 0 if view["result"]["reproduced"] else 1

    from .numerics import (error_chart, error_curve, format_curves,
                           format_verdict, markidis_verdict, supports)
    from .numerics.harness import DEFAULT_KS

    common = dict(ks=ks or DEFAULT_KS, m=args.m, n=args.n,
                  distribution=args.distribution, seed=args.seed,
                  max_workers=args.jobs, engine=args.func_engine)
    f16 = error_curve(spec, accumulate="f16", **common)
    f32 = (error_curve(spec, accumulate="f32", **common)
           if supports(spec, "f32") else None)
    curves = [f16] + ([f32] if f32 else [])
    print(format_curves(curves))
    print()
    print(error_chart(curves))
    print()
    verdict = markidis_verdict(f16, f32)
    print(format_verdict(verdict))
    print(f"curve digests: f16 {f16.digest()[:16]}"
          + (f", f32 {f32.digest()[:16]}" if f32 else
             "  (no f32-accumulate form on this generation)"))
    return 0 if verdict.reproduced else 1


def _cmd_doctor(args) -> int:
    from .robust.doctor import format_report, run_doctor

    report, ok = run_doctor(selftest=not args.no_selftest)
    print(format_report(report))
    if not args.no_selftest:
        print("doctor: all self-tests passed" if ok
              else "doctor: SELF-TEST FAILURES (see above)")
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    from .serve import ServeClient, ServeUnavailable, default_socket

    sock = args.socket or default_socket()
    if args.action == "start":
        return _serve_start(args, sock)
    try:
        with ServeClient(sock) as client:
            if args.action == "stop":
                client.shutdown()
                print(f"daemon at {sock} stopping")
                return 0
            if args.action == "status":
                info = client.ping()
                print(f"daemon at {sock}: pid {info['pid']}, "
                      f"protocol {info['protocol']}, "
                      f"sim {info['sim_version']}, "
                      f"up {info['uptime_s']:.0f}s")
                return 0
            print(_format_serve_stats(client.stats()))
            return 0
    except ServeUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _serve_start(args, sock: str) -> int:
    import signal

    from .serve import ServeDaemon, daemon_available

    if daemon_available(sock):
        print(f"error: a daemon is already serving {sock}", file=sys.stderr)
        return 1
    if args.foreground:
        daemon = ServeDaemon(sock, workers=args.workers,
                             queue_max=args.queue_max)
        try:
            signal.signal(signal.SIGTERM, lambda *_: daemon.stop())
        except ValueError:
            pass  # not the main thread (embedded use)
        print(f"serving on {sock} ({daemon.workers} workers)",
              file=sys.stderr)
        try:
            daemon.serve_forever()
        except KeyboardInterrupt:
            daemon.stop()
        return 0
    return _serve_spawn(args, sock)


def _serve_spawn(args, sock: str) -> int:
    """Fork the daemon into its own session and wait for it to answer."""
    import subprocess
    import time

    from .perf import cache_dir
    from .serve import daemon_available

    cmd = [sys.executable, "-m", "repro", "serve", "start", "--foreground",
           "--socket", sock]
    if args.workers is not None:
        cmd += ["--workers", str(args.workers)]
    if args.queue_max is not None:
        cmd += ["--queue-max", str(args.queue_max)]
    log_path = cache_dir() / "serve.log"
    log_path.parent.mkdir(parents=True, exist_ok=True)
    with open(log_path, "ab") as log:
        proc = subprocess.Popen(cmd, stdout=log, stderr=subprocess.STDOUT,
                                start_new_session=True)
    deadline = time.time() + 10.0
    while time.time() < deadline:
        if daemon_available(sock):
            print(f"daemon started (pid {proc.pid}) on {sock}")
            return 0
        if proc.poll() is not None:
            print(f"error: daemon exited with {proc.returncode} "
                  f"(log: {log_path})", file=sys.stderr)
            return 1
        time.sleep(0.05)
    print(f"error: daemon did not come up within 10s (log: {log_path})",
          file=sys.stderr)
    return 1


def _format_serve_stats(stats: dict) -> str:
    lines = [
        f"daemon pid {stats['pid']}, up {stats['uptime_s']:.0f}s, "
        f"{stats['workers']} workers",
        f"queue: depth {stats['queue_depth']}, "
        f"inflight {stats['inflight']}",
        f"jobs: executed {stats['executed']}, failed {stats['failed']}, "
        f"coalesced {stats['coalesced']}, cache hits {stats['cache_hits']}",
        f"cache: {stats['cache_dir']} "
        f"({stats['cache_disk_entries']} serve entries on disk)",
    ]
    for name, tenant in sorted(stats.get("tenants", {}).items()):
        lines.append(f"tenant {name}: jobs {tenant['jobs']}, "
                     f"coalesced {tenant['coalesced']}, "
                     f"cache hits {tenant['cache_hits']}")
        counters = tenant.get("counters") or {}
        for cname in sorted(counters):
            lines.append(f"    {cname:<26s} {counters[cname]}")
    return "\n".join(lines)


def _cmd_devices(args) -> int:
    """List every registered device with its generation's HMMA shape.

    Everything here comes from the registry (``arch.DEVICES`` and each
    spec's :class:`~repro.arch.family.ArchSpec`) -- no literals, so a new
    registry entry shows up automatically.
    """
    from .arch import DEVICES
    from .report import format_table

    rows = []
    for name in sorted(DEVICES):
        spec = DEVICES[name]
        arch = spec.arch
        rows.append((
            name,
            f"{arch.name} (SM{arch.sm_version})",
            spec.num_sms,
            f"{spec.clock_ghz:.2f}",
            f"{arch.hmma_m}x{arch.hmma_n}x{arch.hmma_k}",
            "yes" if arch.supports_imma else "no",
            f"{spec.tensor_peak_tflops:.1f}",
        ))
    print(format_table(
        ["device", "generation", "SMs", "GHz", "HMMA", "IMMA",
         "peak TFLOPS"],
        rows, title="Registered devices"))
    return 0


def _cmd_disasm(args) -> int:
    from .core import ours
    from .core.builder import HgemmProblem, build_hgemm
    from .core.hgemm import _shrink_to_fit
    from .isa import disassemble, encode_program

    cfg = _shrink_to_fit(ours(), args.m, args.n, args.k)
    program = build_hgemm(cfg, HgemmProblem(
        args.m, args.n, args.k, 0, 1 << 28, 1 << 29))
    if args.binary:
        sys.stdout.write(disassemble(encode_program(program), program.meta))
    else:
        print(program.listing())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tensor Core HGEMM reproduction (IPDPS 2020)")
    parser.add_argument(
        "--timing-engine", choices=["event", "reference"], default=None,
        help="cycle-level simulator engine (default: $REPRO_TIMING_ENGINE "
             "or 'event'; the engines are bit-identical, 'event' is faster)")
    parser.add_argument(
        "--func-engine",
        choices=["lockstep", "gridlock", "predecoded", "reference"],
        default=None,
        help="functional simulator engine (default: $REPRO_FUNC_ENGINE or "
             "'lockstep'; the engines are bit-identical, 'gridlock' stacks "
             "the whole grid into one process)")
    parser.add_argument(
        "--guard", choices=["off", "sample", "full"], default=None,
        help="divergence watchdog: re-run fast-engine launches on the "
             "reference engines and degrade on mismatch (default: "
             "$REPRO_GUARD or 'off'; 'sample' bounds overhead by "
             "$REPRO_GUARD_BUDGET)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="regenerate Tables I-VII")

    p = sub.add_parser("roofline", help="Fig. 3 roofline")
    p.add_argument("--device", default="RTX2070")

    p = sub.add_parser("sweep", help="square-size sweep (Figs. 6-7)")
    p.add_argument("--device", default="RTX2070")
    p.add_argument("--start", type=int, default=1024)
    p.add_argument("--stop", type=int, default=16384)
    p.add_argument("--step", type=int, default=1024)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (0 = one per CPU; default serial)")

    p = sub.add_parser("hgemm", help="run one simulated GEMM")
    p.add_argument("m", type=int)
    p.add_argument("n", type=int)
    p.add_argument("k", type=int)
    p.add_argument("--device", default="RTX2070",
                   help="registry device name (see 'repro devices')")
    p.add_argument("--kernel", default="ours",
                   choices=["ours", "cublas"])
    p.add_argument("--accumulate", default="f16", choices=["f16", "f32"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (0 = one per CPU; default serial)")

    p = sub.add_parser("igemm", help="run one simulated int8 GEMM")
    p.add_argument("m", type=int)
    p.add_argument("n", type=int)
    p.add_argument("k", type=int)
    p.add_argument("--device", default="RTX2070",
                   help="registry device name (see 'repro devices')")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (0 = one per CPU; default serial)")

    p = sub.add_parser("autotune", help="pick the best kernel config")
    p.add_argument("m", type=int)
    p.add_argument("n", type=int)
    p.add_argument("k", type=int)
    p.add_argument("--device", default="RTX2070")
    p.add_argument("--accumulate", default="f16", choices=["f16", "f32"])
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (0 = one per CPU; default serial)")

    p = sub.add_parser("perfstats",
                       help="profile kernels, report simulator/cache stats")
    p.add_argument("--device", default="RTX2070")
    p.add_argument("--kernel", default="both",
                   choices=["ours", "cublas", "both"])
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (0 = one per CPU; default serial)")

    p = sub.add_parser("analyze", help="bottleneck attribution for a launch")
    p.add_argument("m", type=int)
    p.add_argument("n", type=int)
    p.add_argument("k", type=int)
    p.add_argument("--device", default="RTX2070")
    p.add_argument("--kernel", default="ours", choices=["ours", "cublas"])

    p = sub.add_parser("verify", help="bit-exact verification sweep")
    p.add_argument("--device", default="RTX2070",
                   help="registry device name (see 'repro devices')")
    p.add_argument("--kernel", default="ours",
                   choices=["ours", "cublas", "f32", "int8"])
    p.add_argument("--seeds", type=int, default=2)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (0 = one per CPU; default serial)")

    p = sub.add_parser("workloads",
                       help="deep-learning workload suites (run/estimate/"
                            "autotune)")
    p.add_argument("action",
                   choices=["list", "run", "estimate", "autotune"])
    p.add_argument("--suite", default="smoke",
                   help="suite name (see 'repro workloads list')")
    p.add_argument("--device", default="RTX2070")
    p.add_argument("--scale", default=None, choices=["sim", "full"],
                   help="shape scale (default: sim for 'run', full for "
                        "'estimate'/'autotune')")
    p.add_argument("--kernel", default="ours", choices=["ours", "cublas"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--accumulate", default="f16", choices=["f16", "f32"],
                   help="accumulator for 'autotune'")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (0 = one per CPU; default serial)")

    p = sub.add_parser("numerics",
                       help="mixed-precision error curves (FP16 vs FP32 "
                            "accumulate, simulated HMMA)")
    p.add_argument("--device", default="RTX2070")
    p.add_argument("--ks", default=None,
                   help="comma-separated contracted dimensions "
                        "(default 32..1024)")
    p.add_argument("--m", type=int, default=64)
    p.add_argument("--n", type=int, default=64)
    p.add_argument("--distribution", default="positive",
                   choices=["uniform", "positive", "normal"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (0 = one per CPU; default serial)")

    sub.add_parser("devices",
                   help="list registered devices and their generations")

    p = sub.add_parser(
        "doctor", help="robustness health report and pillar self-tests")
    p.add_argument("--no-selftest", action="store_true",
                   help="report configuration/state only; skip the cache, "
                        "worker and guard self-tests")

    p = sub.add_parser("serve", help="simulation-service daemon")
    p.add_argument("action", choices=["start", "stop", "status", "stats"])
    p.add_argument("--socket", default=None,
                   help="unix socket path (default: $REPRO_SERVE_SOCKET "
                        "or <cache dir>/serve.sock)")
    p.add_argument("--workers", type=int, default=None,
                   help="executor threads (default: $REPRO_SERVE_WORKERS "
                        "or 2)")
    p.add_argument("--queue-max", type=int, default=None,
                   help="queued-job bound (default: $REPRO_SERVE_QUEUE_MAX "
                        "or 256)")
    p.add_argument("--foreground", action="store_true",
                   help="with 'start': serve in this process instead of "
                        "forking a background daemon")

    # Thin-client mode: these commands can route through a running daemon.
    for name in ("hgemm", "igemm", "sweep", "autotune", "verify",
                 "workloads", "numerics"):
        sub.choices[name].add_argument(
            "--remote", nargs="?", const="", default=None, metavar="SOCKET",
            help="submit to a 'repro serve' daemon (default socket when no "
                 "path given); falls back to in-process when unreachable")

    p = sub.add_parser("disasm", help="print a generated kernel's SASS")
    p.add_argument("--m", type=int, default=256)
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--k", type=int, default=64)
    p.add_argument("--binary", action="store_true",
                   help="round-trip through the 128-bit encoding first")
    return parser


_COMMANDS = {
    "tables": _cmd_tables,
    "roofline": _cmd_roofline,
    "sweep": _cmd_sweep,
    "hgemm": _cmd_hgemm,
    "igemm": _cmd_igemm,
    "autotune": _cmd_autotune,
    "analyze": _cmd_analyze,
    "verify": _cmd_verify,
    "workloads": _cmd_workloads,
    "numerics": _cmd_numerics,
    "devices": _cmd_devices,
    "disasm": _cmd_disasm,
    "perfstats": _cmd_perfstats,
    "doctor": _cmd_doctor,
    "serve": _cmd_serve,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.timing_engine is not None:
        # Every simulator construction site (including worker processes,
        # which inherit the environment) honours this.
        os.environ["REPRO_TIMING_ENGINE"] = args.timing_engine
    if args.func_engine is not None:
        os.environ["REPRO_FUNC_ENGINE"] = args.func_engine
    if args.guard is not None:
        os.environ["REPRO_GUARD"] = args.guard
    return _COMMANDS[args.command](args)
