"""Shared-memory tile layouts and their addressing (paper Section VI-D).

The CTA keeps two operand tiles in shared memory:

* the A tile, ``b_m`` rows of ``b_k`` halves (row-major);
* the B tile, ``b_n`` columns of ``b_k`` halves (column-major storage, so
  each "row" of the allocation is one n-column's k-slice).

Both use the same row stride: ``b_k + pad`` halves.  ``pad = 0`` is the
naive layout (Fig. 5, slow); ``pad = 8`` skews consecutive rows by 4 banks,
which makes both the STS.128 tile stores and the LDS.32 fragment gathers
bank-conflict-free (verified mechanically by the simulator's conflict
calculator, see ``tests/sim/test_shared.py``).

Note on the paper: Section VI-D gives ``offset = row*32 + row%2*8 + col``
("pad 8 halves every other row", 36 KB/CTA).  Taken literally that formula
overlaps adjacent rows, and under our whole-warp bank model the every-other-
row skew still leaves 2-way LDS conflicts, so we implement the same idea
with an unambiguous stride: 8 halves of padding on *every* row (40 KB/CTA
at 256x256x32).  The occupancy consequence is identical (1 CTA/SM) and the
conflict-free property is machine-checked.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import KernelConfig

__all__ = ["TileLayout", "SmemPlan"]


@dataclass(frozen=True)
class TileLayout:
    """Addressing of one operand tile in shared memory.

    ``swizzle`` XOR-permutes the eight 16-byte chunks of each 128-byte row
    by ``row % 8`` -- cuBLAS's padding-free conflict avoidance (requires
    ``cols == 64`` halves so a row is exactly 8 chunks).
    """

    rows: int            # b_m (A) or b_n (B)
    cols: int            # b_k, in elements
    pad_halves: int      # row padding, in elements
    base_bytes: int      # offset of this tile within the CTA's allocation
    swizzle: bool = False
    elem_bytes: int = 2  # 2 = FP16 halves, 1 = INT8

    def __post_init__(self) -> None:
        if self.swizzle and (self.pad_halves or self.cols != 64
                             or self.elem_bytes != 2):
            raise ValueError(
                "swizzle requires FP16 tiles with cols == 64 and no padding"
            )

    @property
    def row_stride_halves(self) -> int:
        return self.cols + self.pad_halves

    @property
    def row_stride_bytes(self) -> int:
        return self.elem_bytes * self.row_stride_halves

    @property
    def size_bytes(self) -> int:
        return self.rows * self.row_stride_bytes

    def offset_halves(self, row: int, col: int) -> int:
        """Logical (row, col) -> half-element offset within the tile."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols} tile")
        if self.swizzle:
            chunk, within = divmod(col, 8)
            return row * self.row_stride_halves + (chunk ^ (row % 8)) * 8 + within
        return row * self.row_stride_halves + col

    def address(self, row: int, col: int) -> int:
        """Logical (row, col) -> byte address in shared memory."""
        return self.base_bytes + self.elem_bytes * self.offset_halves(row, col)

    def row_address(self, row: int) -> int:
        return self.address(row, 0)


@dataclass(frozen=True)
class SmemPlan:
    """The CTA's full shared-memory plan: A tile followed by B tile."""

    a: TileLayout
    b: TileLayout

    @classmethod
    def for_config(cls, config: KernelConfig) -> "SmemPlan":
        a = TileLayout(
            rows=config.b_m, cols=config.b_k,
            pad_halves=config.smem_pad_elems, base_bytes=0,
            swizzle=config.smem_swizzle,
            elem_bytes=config.ab_element_bytes,
        )
        b = TileLayout(
            rows=config.b_n, cols=config.b_k,
            pad_halves=config.smem_pad_elems, base_bytes=a.size_bytes,
            swizzle=config.smem_swizzle,
            elem_bytes=config.ab_element_bytes,
        )
        return cls(a=a, b=b)

    @property
    def total_bytes(self) -> int:
        return self.a.size_bytes + self.b.size_bytes
