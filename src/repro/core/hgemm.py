"""Public HGEMM API: run the generated kernels on the simulated device.

This is the user-facing entry point of the reproduction::

    import numpy as np
    from repro import hgemm

    A = np.random.rand(256, 128).astype(np.float16)
    B = np.random.rand(128, 512).astype(np.float16)
    C = hgemm(A, B)                       # our optimized kernel
    C2 = hgemm(A, B, kernel="cublas")     # the cuBLAS-10.1-like baseline

``hgemm`` executes the *actual generated SASS program* on the functional
simulator, so the result carries the true Tensor Core arithmetic (per-HMMA
FP16 rounding of the accumulator).  ``hgemm_reference`` provides the
matching NumPy oracle.
"""

from __future__ import annotations

import numpy as np

from ..arch.family import SM75, ArchSpec
from ..arch.turing import GpuSpec, RTX2070
from ..sim.functional import FunctionalSimulator
from ..sim.memory import GlobalMemory
from .builder import HgemmProblem, build_hgemm
from .config import (
    ConfigError,
    KernelConfig,
    adapt_for_arch,
    cublas_like,
    ours,
    ours_f32,
)

__all__ = ["hgemm", "hgemm_batched", "hgemm_reference", "HgemmRun",
           "resolve_config"]


def _resolve_config(kernel, m: int, n: int, k: int,
                    accumulate: str = "f16",
                    spec: GpuSpec = RTX2070) -> KernelConfig:
    arch = getattr(spec, "arch", SM75)
    if isinstance(kernel, KernelConfig):
        if accumulate == "f32" and not kernel.accum_f32:
            raise ValueError(
                "accumulate='f32' needs a config with accum_f32=True"
            )
        return kernel  # explicit configs are taken verbatim
    if kernel in ("ours", None):
        base = ours_f32() if accumulate == "f32" else ours()
    elif kernel in ("cublas", "cublas-like", "baseline"):
        if accumulate == "f32":
            raise ValueError("the baseline kernel is FP16-accumulate only")
        base = cublas_like()
    else:
        raise ValueError(f"unknown kernel {kernel!r}")
    return _shrink_to_fit(adapt_for_arch(base, arch), m, n, k, arch)


def _shrink_to_fit(config: KernelConfig, m: int, n: int, k: int,
                   arch: ArchSpec = SM75) -> KernelConfig:
    """Shrink the CTA/warp tiles for problems smaller than one tile.

    Production GEMM libraries keep a family of kernels and pick by shape;
    we emulate that by halving tile dimensions until they divide the
    problem.  Raises if no feasible member exists.
    """
    b_m, b_n, b_k = config.b_m, config.b_n, config.b_k
    w_m, w_n = config.w_m, config.w_n
    while b_m > 64 and m % b_m:
        b_m //= 2
        w_m = min(w_m, max(16, b_m // 2))
    while b_n > 64 and n % b_n:
        b_n //= 2
        w_n = min(w_n, max(8, b_n // 2))
    while b_k > 16 and k % b_k:
        b_k //= 2
    kwargs = dict(b_m=b_m, b_n=b_n, b_k=b_k, w_m=w_m, w_n=w_n)
    if config.smem_swizzle and b_k != 64:
        kwargs.update(smem_swizzle=False, smem_pad_halves=0)
    if m % b_m or n % b_n or k % b_k:
        raise ConfigError(
            f"no kernel in the family fits {m}x{n}x{k}; dimensions must be "
            f"multiples of (64, 64, 16)"
        )
    candidate = config.with_(**kwargs)
    if candidate.b_k // candidate.w_k < 2 or (candidate.b_k // candidate.w_k) % 2:
        min_wk = arch.hmma_k if config.ab_dtype == "f16" else config.w_k
        candidate = candidate.with_(w_k=min_wk,
                                    b_k=max(2 * min_wk, candidate.b_k))
    return candidate


def resolve_config(kernel, m: int, n: int, k: int,
                   accumulate: str = "f16",
                   spec: GpuSpec = RTX2070) -> KernelConfig:
    """The kernel-family selection :func:`hgemm` performs, as a public API.

    Workload drivers that manage device memory themselves (the batched
    and conv-as-GEMM paths in :mod:`repro.workloads`) need the same
    preset-to-feasible-member resolution without launching anything:
    named presets are adapted to the device's Tensor Core generation and
    shrunk until they tile ``m x n x k``; explicit configs are taken
    verbatim, exactly as ``hgemm`` would.
    """
    return _resolve_config(kernel, m, n, k, accumulate, spec)


class HgemmRun:
    """Result of one simulated HGEMM launch."""

    def __init__(self, c: np.ndarray, config: KernelConfig, stats):
        self.c = c
        self.config = config
        self.stats = stats

    def __array__(self, dtype=None, copy=None):
        arr = self.c
        if dtype is not None:
            arr = arr.astype(dtype)
        return arr


def hgemm(a, b, kernel="ours", spec: GpuSpec = RTX2070,
          accumulate: str = "f16", alpha: float = 1.0, beta: float = 0.0,
          c=None, return_run: bool = False, max_workers: int = None,
          engine: str = None, guard: str = None):
    """Compute ``C = alpha * A @ B + beta * C`` on the simulated GPU.

    Args:
        a: (m, k) array, converted to float16 row-major.
        b: (k, n) array, converted to float16 (stored column-major on the
           device, as the paper's evaluation does).
        kernel: "ours", "cublas", or an explicit :class:`KernelConfig`.
        spec: target device description.
        accumulate: "f16" (``HMMA.1688.F16``, FP16 C -- the paper's
           kernels) or "f32" (``HMMA.1688.F32``, FP32 accumulators and
           FP32 C -- the paper's Section VIII future work).
        alpha, beta: the standard GEMM scalars (paper Section II-A; its
           evaluation uses alpha=1, beta=0).  FP16 path only.
        c: (m, n) float16 input, required when ``beta != 0``.
        return_run: also return kernel statistics.
        max_workers: CTA-parallel worker processes for the functional run
           (``None``/1 serial, 0 one per CPU, ``REPRO_FUNC_JOBS`` default).
        engine: functional execution engine ("lockstep", "gridlock",
           "predecoded", "reference"); ``None`` defers to
           ``REPRO_FUNC_ENGINE``.  All engines are bit-identical.
        guard: divergence-watchdog mode ("off", "sample", "full");
           ``None`` defers to ``REPRO_GUARD`` (see
           :mod:`repro.robust.guard`).

    Returns:
        (m, n) float16 (or float32) array, or an :class:`HgemmRun` when
        *return_run*.
    """
    if accumulate not in ("f16", "f32"):
        raise ValueError(f"accumulate must be 'f16' or 'f32', got {accumulate!r}")
    a16 = np.ascontiguousarray(a, dtype=np.float16)
    b16 = np.ascontiguousarray(b, dtype=np.float16)
    if a16.ndim != 2 or b16.ndim != 2 or a16.shape[1] != b16.shape[0]:
        raise ValueError(
            f"incompatible operands: A{a16.shape} @ B{b16.shape}"
        )
    m, k = a16.shape
    n = b16.shape[1]
    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires the input C")
        c_in = np.ascontiguousarray(c, dtype=np.float16)
        if c_in.shape != (m, n):
            raise ValueError(f"C must be ({m}, {n}), got {c_in.shape}")
    config = _resolve_config(kernel, m, n, k, accumulate, spec)
    c_dtype = np.float32 if config.accum_f32 else np.float16

    def aligned(nbytes: int) -> int:
        return (nbytes + 255) // 256 * 256

    a_addr = 0
    b_addr = aligned(a16.nbytes)
    c_addr = b_addr + aligned(b16.nbytes)
    total = c_addr + aligned(np.dtype(c_dtype).itemsize * m * n) + 256
    memory = GlobalMemory(total)
    memory.write_array(a_addr, a16)
    memory.write_array(b_addr, np.ascontiguousarray(b16.T))  # n x k
    if beta != 0.0:
        memory.write_array(c_addr, c_in)

    problem = HgemmProblem(m=m, n=n, k=k, a_addr=a_addr, b_addr=b_addr,
                           c_addr=c_addr, alpha=alpha, beta=beta)
    program = build_hgemm(config, problem, spec)
    stats = FunctionalSimulator(engine=engine, guard=guard).run(
        program, memory, grid_dim=config.grid_dim(m, n),
        max_workers=max_workers)
    out = memory.read_array(c_addr, c_dtype, m * n).reshape(m, n)
    if return_run:
        return HgemmRun(out, config, stats)
    return out


def hgemm_batched(a, b, kernel="ours", spec: GpuSpec = RTX2070,
                  accumulate: str = "f16") -> np.ndarray:
    """Batched GEMM: ``C[i] = A[i] @ B[i]`` for a stack of problems.

    The paper's related work (Li et al. [16]) targets batched small GEMMs;
    this wrapper provides the API surface by launching one grid per batch
    entry (each entry re-uses the same generated kernel, so the builder
    cost is paid once per shape).
    """
    a_s = np.ascontiguousarray(a, dtype=np.float16)
    b_s = np.ascontiguousarray(b, dtype=np.float16)
    if a_s.ndim != 3 or b_s.ndim != 3 or a_s.shape[0] != b_s.shape[0]:
        raise ValueError(
            f"batched operands must be (batch, m, k) and (batch, k, n); "
            f"got {a_s.shape} and {b_s.shape}"
        )
    out = [hgemm(a_s[i], b_s[i], kernel=kernel, spec=spec,
                 accumulate=accumulate) for i in range(a_s.shape[0])]
    return np.stack(out)


def hgemm_reference(a, b, w_k: int = 8, accumulate: str = "f16",
                    alpha: float = 1.0, beta: float = 0.0,
                    c=None) -> np.ndarray:
    """NumPy oracle with the Tensor Core precision model: full-precision
    products, accumulator rounding once per ``w_k``-wide HMMA step (to FP16
    for ``accumulate='f16'``; FP32 accumulation is exact per step), then
    the epilogue's packed-FP16 alpha/beta scaling."""
    a16 = np.ascontiguousarray(a, dtype=np.float16)
    b16 = np.ascontiguousarray(b, dtype=np.float16)
    m, k = a16.shape
    n = b16.shape[1]
    acc_dtype = np.float32 if accumulate == "f32" else np.float16
    acc = np.zeros((m, n), dtype=acc_dtype)
    for start in range(0, k, w_k):
        partial = (
            a16[:, start : start + w_k].astype(np.float32)
            @ b16[start : start + w_k].astype(np.float32)
        )
        acc = (partial + acc.astype(np.float32)).astype(acc_dtype)
    if alpha != 1.0:
        # HFMA2: acc * alpha + 0, rounded to FP16.
        acc = (acc.astype(np.float32)
               * np.float32(np.float16(alpha))).astype(np.float16)
    if beta != 0.0:
        c16 = np.ascontiguousarray(c, dtype=np.float16)
        # HFMA2: c * beta + acc, rounded to FP16.
        acc = (c16.astype(np.float32) * np.float32(np.float16(beta))
               + acc.astype(np.float32)).astype(np.float16)
    return acc
