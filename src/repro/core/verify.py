"""Kernel verification harness: sweep shapes, compare against the oracle.

What a kernel engineer runs after every schedule change: a grid of problem
shapes and seeds through the functional simulator, checked bit-exactly
against the precision-model oracle, with per-case outcomes collected
instead of stopping at the first failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.turing import GpuSpec, RTX2070
from .config import KernelConfig
from .hgemm import hgemm, hgemm_reference
from .igemm import igemm, igemm_reference

__all__ = ["CaseResult", "VerificationReport", "verify_kernel"]

#: Default shape grid: small-but-representative multiples of the tiles.
DEFAULT_SHAPES = (
    (64, 64, 16), (64, 64, 32), (128, 64, 32), (64, 128, 48),
    (128, 128, 64), (192, 64, 32), (64, 192, 64), (128, 128, 96),
)


@dataclass
class CaseResult:
    """One verified (shape, seed) case."""

    m: int
    n: int
    k: int
    seed: int
    passed: bool
    max_error: float = 0.0
    message: str = ""


@dataclass
class VerificationReport:
    """All cases of one verification run."""

    kernel_name: str
    cases: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(case.passed for case in self.cases)

    @property
    def failures(self) -> list:
        return [case for case in self.cases if not case.passed]

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"{status}: {self.kernel_name} -- "
                 f"{len(self.cases) - len(self.failures)}/{len(self.cases)} "
                 "cases bit-exact"]
        for case in self.failures:
            lines.append(f"  FAIL {case.m}x{case.n}x{case.k} seed={case.seed}"
                         f": {case.message or f'max err {case.max_error}'}")
        return "\n".join(lines)


def verify_kernel(config: KernelConfig, shapes=DEFAULT_SHAPES,
                  seeds=(0, 1), spec: GpuSpec = RTX2070,
                  max_workers: int = None,
                  engine: str = None) -> VerificationReport:
    """Run *config* over a shape/seed grid against the oracle.

    Shapes that the configuration cannot tile are skipped (they are not
    this kernel's job); everything it accepts must be bit-exact.
    ``max_workers`` shards each launch's CTAs over worker processes
    (``None``/1 serial, 0 one per CPU) -- results are bit-identical either
    way, the parallel path only changes wall time.  ``engine`` picks the
    functional execution engine (``None`` -> ``REPRO_FUNC_ENGINE``).
    """
    report = VerificationReport(kernel_name=config.name or "custom")
    is_int8 = config.ab_dtype == "s8"
    for m, n, k in shapes:
        if m % config.b_m or n % config.b_n or k % config.b_k:
            continue
        for seed in seeds:
            rng = np.random.default_rng(seed)
            if is_int8:
                a = rng.integers(-128, 128, (m, k), dtype=np.int8)
                b = rng.integers(-128, 128, (k, n), dtype=np.int8)
            else:
                a = rng.uniform(-2, 2, (m, k)).astype(np.float16)
                b = rng.uniform(-2, 2, (k, n)).astype(np.float16)
            try:
                if is_int8:
                    got = igemm(a, b, kernel=config, spec=spec,
                                max_workers=max_workers, engine=engine)
                    want = igemm_reference(a, b)
                else:
                    got = hgemm(a, b, kernel=config, spec=spec,
                                accumulate="f32" if config.accum_f32 else "f16",
                                max_workers=max_workers, engine=engine)
                    want = hgemm_reference(
                        a, b, w_k=config.w_k,
                        accumulate="f32" if config.accum_f32 else "f16")
            except Exception as exc:
                report.cases.append(CaseResult(
                    m=m, n=n, k=k, seed=seed, passed=False,
                    message=f"{type(exc).__name__}: {exc}"))
                continue
            exact = np.array_equal(got, want)
            err = 0.0
            if not exact:
                err = float(np.abs(got.astype(np.float64)
                                   - want.astype(np.float64)).max())
            report.cases.append(CaseResult(
                m=m, n=n, k=k, seed=seed, passed=exact, max_error=err))
    return report
