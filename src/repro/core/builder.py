"""Generator of the blocked Tensor Core HGEMM kernel (paper Algorithm 1).

Emits the complete SASS program for one :class:`~repro.core.config.KernelConfig`
and one problem instance, following the paper's design:

* two-level blocking -- CTA tile ``(b_m, b_n, b_k)`` in shared memory, warp
  tile ``(w_m, w_n, w_k)`` in registers;
* data prefetching (Section VI-B) -- the next iteration's global loads are
  interleaved into the current iteration's HMMA stream;
* CPI-guided interleaving (Section VI-C) -- LDS/LDG spacing from Eq. (6),
  STS spacing from ``config.sts_interleave`` (the Fig. 4 ablation knob);
* padded shared-memory layout (Section VI-D) via
  :class:`~repro.core.layout.SmemPlan` (the Fig. 5 ablation knob).

Matrix conventions (Section VII): A is row-major ``m x k``, B is stored as
``n x k`` row-major (i.e. the column-major ``k x n`` operand), C is
row-major ``m x n``.  The same emitter also covers the paper's future-work
variants -- ``HMMA.1688.F32`` accumulators (``accum_f32``) and the int8
``IMMA.8816`` path (``ab_dtype="s8"``) -- and the standard-form epilogue
``C = alpha*A@B + beta*C``.

Pipeline structure per ``b_k`` iteration (single shared buffer, double-
buffered register fragments)::

    slice 0        : HMMAs + LDS(slice 1) + LDG(next tile) + loop bookkeeping
    ...
    slice S-2      : HMMAs + LDS(slice S-1)
    BAR.SYNC       : after this, no warp reads the shared tile again
                     (remaining compute uses register fragments)
    slice S-1      : HMMAs + STS(next tile)   <- STS overlapped with compute
    BAR.SYNC       : next tile visible to all warps
    LDS(slice 0 of next tile)

The mid-iteration barrier is what lets a *single* 40 KB shared buffer
overlap its refill with Tensor Core work -- double-buffering 256x256 tiles
would need 80 KB, more than the SM has.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.family import SM75, ArchSpec
from ..arch.turing import GpuSpec, RTX2070
from ..isa.builder import ProgramBuilder
from ..isa.operands import Pred, Reg, RZ
from ..isa.program import Program
from .config import ConfigError, KernelConfig
from .layout import SmemPlan
from .scheduler import InterleaveScheduler, spacing_for

__all__ = ["HgemmProblem", "RegisterPlan", "build_hgemm"]


def _log2(value: int) -> int:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{value} must be a positive power of two")
    return value.bit_length() - 1


def _half2_bits(value: float) -> int:
    """A scalar replicated into both halves of a packed-half2 word."""
    import numpy as np

    bits = int(np.float16(value).view(np.uint16))
    return bits | (bits << 16)


@dataclass(frozen=True)
class HgemmProblem:
    """One GEMM instance with device addresses baked in.

    ``alpha`` and ``beta`` give the standard form ``C = alpha*A@B + beta*C``
    (paper Section II-A; the evaluation fixes alpha=1, beta=0).  Scaling is
    applied in the epilogue with packed ``HFMA2`` on the FP16 path; the
    FP32-accumulator kernel supports only the alpha=1, beta=0 form.
    """

    m: int
    n: int
    k: int
    a_addr: int = 0
    b_addr: int = 0
    c_addr: int = 0
    alpha: float = 1.0
    beta: float = 0.0

    def validate(self, config: KernelConfig) -> None:
        if self.m % config.b_m or self.n % config.b_n or self.k % config.b_k:
            raise ConfigError(
                f"problem {self.m}x{self.n}x{self.k} must be a multiple of "
                f"the CTA tile {config.cta_tile}"
            )
        for name, addr in (("A", self.a_addr), ("B", self.b_addr), ("C", self.c_addr)):
            if addr % 16:
                raise ConfigError(f"{name} base address must be 16-byte aligned")
        if (config.accum_f32 or config.ab_dtype == "s8") and \
                (self.alpha != 1.0 or self.beta != 0.0):
            raise ConfigError(
                "alpha/beta scaling is implemented for the FP16 path only"
            )

    @property
    def needs_scaling(self) -> bool:
        return self.alpha != 1.0 or self.beta != 0.0

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k


@dataclass(frozen=True)
class RegisterPlan:
    """Register file layout of the generated kernel."""

    acc: int              # first accumulator register
    n_acc: int
    a_frag: int           # first A-fragment register (2 buffers)
    a_frag_per_buf: int
    b_frag: int
    b_frag_per_buf: int
    stage_a: int          # LDG staging for the A tile
    stage_b: int
    n_ldg_a: int          # LDG.128 count per thread, per tile
    n_ldg_b: int
    ldg_base_a: int       # first global-address register for A chunks
    ldg_base_b: int
    swz_base_a: int       # per-slice swizzled LDS bases (swizzle mode only)
    swz_base_b: int
    top: int              # highest register index used + 1

    @classmethod
    def for_config(cls, config: KernelConfig, threads: int,
                   arch: ArchSpec = SM75) -> "RegisterPlan":
        n_acc = config.accumulator_regs
        if config.ab_dtype == "s8":
            a_per_buf = config.w_m // 8
            b_per_buf = config.w_n // 8
        else:
            # Per-generation HMMA operand footprint: SM70's 1-register
            # 8x8 A and SM80's 4-register 16x16 A both reduce to the same
            # w_m/8 A budget; SM80's 2-register B doubles the B budget.
            a_per_buf = (config.w_m // arch.hmma_m) * arch.a_regs
            b_per_buf = (config.w_n // arch.hmma_n) * arch.b_regs
        elems_per_ldg = 16 // config.ab_element_bytes  # one LDG.128
        n_ldg_a = (config.b_m * config.b_k) // (threads * elems_per_ldg)
        n_ldg_b = (config.b_n * config.b_k) // (threads * elems_per_ldg)
        if n_ldg_a < 1 or n_ldg_b < 1:
            raise ConfigError(
                "CTA tile too small: every thread must issue at least one "
                "LDG.128 per operand tile"
            )
        # R0..R31 are prologue scratch + persistent address registers;
        # everything long-lived sits above.
        def layout(acc):
            a_frag = acc + n_acc
            b_frag = a_frag + 2 * a_per_buf
            stage_a = b_frag + 2 * b_per_buf
            stage_b = stage_a + 4 * n_ldg_a
            return a_frag, b_frag, stage_a, stage_b, stage_b + 4 * n_ldg_b

        acc = 32
        a_frag, b_frag, stage_a, stage_b, top = layout(acc)
        if top > 255 and top - 255 <= 3:
            # R29..R31 are prologue-only sources; reclaim them for
            # accumulators when the plan is a whisker over the limit
            # (the Table VI 128x64-warp configurations).
            acc = 32 - (top - 255)
            a_frag, b_frag, stage_a, stage_b, top = layout(acc)
        swz_base_a = swz_base_b = 0
        # The LDG base pointers are written *last* in the prologue, so they
        # may reuse the freed scratch slots R11..R31 when they fit -- this
        # is what keeps the register-hungry Table VI configurations
        # launchable.
        if n_ldg_a + n_ldg_b <= 18:  # R11..R28 (R29-31 stay scratch sources)
            ldg_base_a = 11
        else:
            ldg_base_a = top
            top += n_ldg_a + n_ldg_b
        ldg_base_b = ldg_base_a + n_ldg_a
        if config.smem_swizzle:
            slices = config.b_k // config.w_k
            swz_base_a = top
            swz_base_b = swz_base_a + slices
            top = swz_base_b + slices
        if top > 255:
            raise ConfigError(
                f"kernel needs {top} registers/thread; the hardware limit "
                "is 255 (paper Section VI-A: e.g. 128x128 warp tiles do "
                "not fit)"
            )
        return cls(
            acc=acc, n_acc=n_acc,
            a_frag=a_frag, a_frag_per_buf=a_per_buf,
            b_frag=b_frag, b_frag_per_buf=b_per_buf,
            stage_a=stage_a, stage_b=stage_b,
            n_ldg_a=n_ldg_a, n_ldg_b=n_ldg_b,
            ldg_base_a=ldg_base_a, ldg_base_b=ldg_base_b,
            swz_base_a=swz_base_a, swz_base_b=swz_base_b,
            top=top,
        )


class _HgemmEmitter:
    """Stateful emitter; one instance builds one kernel."""

    # Scratch / address registers (all < 32, free for the prologue to reuse).
    R_TID, R_SCRATCH0, R_SCRATCH1, R_SCRATCH2, R_COUNTER = 1, 0, 2, 3, 4
    R_LANEFRAG = 5
    R_A_STS, R_B_STS, R_A_LDS, R_B_LDS, R_C = 6, 7, 8, 9, 10
    #: Packed-half2 alpha/beta for the epilogue; they reuse prologue
    #: scratch that is dead by then (R2/R3: lane and warp indices).
    R_ALPHA, R_BETA = 2, 3
    #: P_LOOP is true while more k-iterations remain *after* the current
    #: one -- it guards both the loop branch and the next-tile prefetch.
    P_LOOP = Pred(0)
    BAR_LDG_A, BAR_LDG_B = 0, 1
    BAR_FRAG0, BAR_FRAG1 = 2, 3
    #: Scoreboards for slice-0 fragments deferred past the trailing barrier
    #: into slice 0's HMMA stream (shrinks the per-iteration serial-LDS
    #: bubble): A operands >= slice0_split_op use BAR_DEFER_A; B operands
    #: >= slice0_split_b use BAR_DEFER_B.
    BAR_DEFER_A = 4
    BAR_DEFER_B = 5

    def __init__(self, config: KernelConfig, problem: HgemmProblem,
                 spec: GpuSpec):
        problem.validate(config)
        config.validate_against(spec)
        self.cfg = config
        self.prob = problem
        self.spec = spec
        self.arch = getattr(spec, "arch", SM75)
        self.slices = config.b_k // config.w_k
        if self.slices < 2 or self.slices % 2:
            raise ConfigError(
                f"b_k/w_k = {self.slices}: the software pipeline needs an "
                "even slice count >= 2"
            )
        self.plan = SmemPlan.for_config(config)
        self.threads = config.threads_per_cta
        if config.smem_swizzle:
            rows_per_group = self.threads // self._cpr
            if rows_per_group % 8:
                raise ConfigError(
                    "swizzle needs the LDG row-group step to be a multiple "
                    f"of 8 rows, got {rows_per_group}"
                )
        self.regs = RegisterPlan.for_config(config, self.threads, self.arch)
        self.b = ProgramBuilder(
            name=f"hgemm_{config.name or 'custom'}_{problem.m}x{problem.n}x{problem.k}",
            num_regs=self.regs.top,
            smem_bytes=self.plan.total_bytes,
            block_dim=self.threads,
        )
        self.lds_spacing = spacing_for(spec, "lds", 32)
        self.ldg_spacing = spacing_for(spec, "ldg", 128)

    # ------------------------------------------------------------- helpers

    def _frag_buf(self, which: str, buf: int) -> int:
        if which == "a":
            return self.regs.a_frag + buf * self.regs.a_frag_per_buf
        return self.regs.b_frag + buf * self.regs.b_frag_per_buf

    @property
    def _is_int8(self) -> bool:
        return self.cfg.ab_dtype == "s8"

    @property
    def _cpr(self) -> int:
        """LDG.128 (16-byte) chunks per tile row."""
        return self.cfg.b_k * self.cfg.ab_element_bytes // 16

    @property
    def _a_op_rows(self) -> int:
        """Output rows per tensor instruction (IMMA 8, HMMA per-arch)."""
        return 8 if self._is_int8 else self.arch.hmma_m

    @property
    def _a_regs_per_op(self) -> int:
        """A-fragment registers per tensor op (IMMA 1, HMMA per-arch)."""
        return 1 if self._is_int8 else self.arch.a_regs

    @property
    def _b_regs_per_op(self) -> int:
        """B-fragment registers per tensor op (IMMA 1, HMMA per-arch)."""
        return 1 if self._is_int8 else self.arch.b_regs

    @property
    def _acc_stride(self) -> int:
        """Accumulator registers per tensor op."""
        if self.cfg.accum_f32:
            return self.arch.c_regs_f32   # 16x8 of f32
        if self._is_int8:
            return 2                      # 8x8 of s32
        return self.arch.c_regs_f16       # hmma_m x 8 of f16

    def _acc_pair(self, i: int, j: int) -> int:
        return self.regs.acc + (i * (self.cfg.w_n // 8) + j) * self._acc_stride

    # ------------------------------------------------------------ prologue

    def emit_prologue(self) -> None:
        b, cfg, regs = self.b, self.cfg, self.regs
        stride2 = self.plan.a.row_stride_bytes       # row stride in bytes
        cpr = self._cpr                              # LDG.128 chunks per row
        warps_m = cfg.b_m // cfg.w_m

        b.s2r(self.R_TID, "SR_TID.X", stall=6)
        # lane = tid & 31; warp = tid >> 5
        b.lop3_and(self.R_SCRATCH1, Reg(self.R_TID), 31, stall=6)   # lane
        b.shf_r(self.R_SCRATCH2, Reg(self.R_TID), 5, stall=6)       # warp

        # Fragment lane offset: (lane>>2)*stride2 + (lane&3)*4.
        # R28 keeps s = lane>>2, the fragment row parity the swizzle needs.
        b.shf_r(28, Reg(self.R_SCRATCH1), 2, stall=6)
        b.imad(self.R_LANEFRAG, Reg(28), stride2, RZ, stall=6)
        b.lop3_and(self.R_SCRATCH0, Reg(self.R_SCRATCH1), 3, stall=6)
        b.imad(self.R_SCRATCH0, Reg(self.R_SCRATCH0), 4, Reg(self.R_LANEFRAG), stall=6)
        b.mov(self.R_LANEFRAG, Reg(self.R_SCRATCH0), stall=6)

        # warp_m = warp & (warps_m-1); warp_n = warp >> log2(warps_m).
        b.lop3_and(20, Reg(self.R_SCRATCH2), warps_m - 1, stall=6)
        b.shf_r(21, Reg(self.R_SCRATCH2), _log2(warps_m), stall=6)

        # Shared fragment bases.
        b.imad(self.R_A_LDS, Reg(20), cfg.w_m * stride2, Reg(self.R_LANEFRAG), stall=6)
        b.imad(self.R_B_LDS, Reg(21), cfg.w_n * stride2, Reg(self.R_LANEFRAG), stall=6)
        b.iadd3(self.R_B_LDS, Reg(self.R_B_LDS), self.plan.b.base_bytes, RZ, stall=6)
        if cfg.smem_swizzle:
            # One base per k-slice, chunk index XOR-permuted by the
            # fragment row parity s: base_ki = common + 16 * (ki ^ s).
            for ki in range(self.slices):
                b.lop3_xor(29, Reg(28), ki, stall=6)
                b.imad(self.regs.swz_base_a + ki, Reg(29), 16,
                       Reg(self.R_A_LDS), stall=6)
                b.imad(self.regs.swz_base_b + ki, Reg(29), 16,
                       Reg(self.R_B_LDS), stall=6)

        # Tile load mapping: trow = tid >> log2(cpr); tcol = tid & (cpr-1).
        b.shf_r(22, Reg(self.R_TID), _log2(cpr), stall=6)   # trow
        b.lop3_and(23, Reg(self.R_TID), cpr - 1, stall=6)   # tcol
        b.imad(self.R_A_STS, Reg(22), stride2, RZ, stall=6)
        if cfg.smem_swizzle:
            # Store to the swizzled chunk: tcol ^ (trow % 8).  The chunk is
            # invariant across this thread's LDG groups because the group
            # row step is a multiple of 8.
            b.lop3_and(29, Reg(22), 7, stall=6)
            b.lop3_xor(29, Reg(23), Reg(29), stall=6)
            b.imad(self.R_A_STS, Reg(29), 16, Reg(self.R_A_STS), stall=6)
        else:
            b.imad(self.R_A_STS, Reg(23), 16, Reg(self.R_A_STS), stall=6)
        b.iadd3(self.R_B_STS, Reg(self.R_A_STS), self.plan.b.base_bytes, RZ, stall=6)

        b.s2r(24, "SR_CTAID.Y", stall=6)
        b.s2r(25, "SR_CTAID.X", stall=6)
        k2 = cfg.ab_element_bytes * self.prob.k
        rows_per_group = self.threads // cpr

        # C base: c_addr + (ctaid.y*b_m + warp_m*w_m + lane>>2)*ce*n
        #              + (ctaid.x*b_n + warp_n*w_n + (lane&3)*2)*ce,
        # where ce = 2 bytes (FP16 C) or 4 bytes (FP32 accumulators).
        ce = cfg.c_element_bytes
        row_stride = ce * self.prob.n
        b.shf_r(26, Reg(self.R_SCRATCH1), 2, stall=6)
        b.imad(26, Reg(20), cfg.w_m, Reg(26), stall=6)
        b.imad(26, Reg(24), cfg.b_m, Reg(26), stall=6)
        b.mov32i(27, row_stride, stall=6)
        b.imad(26, Reg(26), Reg(27), RZ, stall=6)
        b.lop3_and(27, Reg(self.R_SCRATCH1), 3, stall=6)
        b.imad(26, Reg(27), 2 * ce, Reg(26), stall=6)
        b.imad(26, Reg(21), cfg.w_n * ce, Reg(26), stall=6)
        b.imad(26, Reg(25), cfg.b_n * ce, Reg(26), stall=6)
        b.iadd3(self.R_C, Reg(26), self.prob.c_addr, RZ, stall=6)

        # Global tile bases, written last: they may reuse scratch slots
        # R11..R28 (see RegisterPlan).  ctaid.y walks M tiles; ctaid.x
        # walks N tiles.  Per-thread sources go to R30 (A) / R31 (B) so
        # base writes never clobber them.
        b.mov32i(29, k2, stall=6)
        for src, n_ldg, ctaid_reg, tile_rows, addr in (
            (30, regs.n_ldg_a, 24, cfg.b_m, self.prob.a_addr),
            (31, regs.n_ldg_b, 25, cfg.b_n, self.prob.b_addr),
        ):
            # row0 = ctaid*tile_rows + trow; base = addr + row0*k2 + tcol*16.
            b.imad(src, Reg(ctaid_reg), tile_rows, Reg(22), stall=6)
            b.imad(src, Reg(src), Reg(29), RZ, stall=6)
            b.imad(src, Reg(23), 16, Reg(src), stall=6)
            b.iadd3(src, Reg(src), addr, RZ, stall=6)
        for src, base_reg_first, n_ldg in (
            (30, regs.ldg_base_a, regs.n_ldg_a),
            (31, regs.ldg_base_b, regs.n_ldg_b),
        ):
            for i in range(n_ldg):
                b.iadd3(base_reg_first + i, Reg(src), i * rows_per_group * k2,
                        RZ, stall=6)

        # Loop counter and predicate.
        b.mov32i(self.R_COUNTER, self.prob.k // cfg.b_k, stall=6)
        b.isetp(self.P_LOOP, Reg(self.R_COUNTER), 0, cmp="GT", stall=6)

        # Epilogue scaling constants as packed half2 (alpha|alpha etc.).
        # R2/R3 (lane/warp scratch) are dead from here on.
        if self.prob.needs_scaling:
            b.mov32i(self.R_ALPHA, _half2_bits(self.prob.alpha), stall=1)
            b.mov32i(self.R_BETA, _half2_bits(self.prob.beta), stall=1)

        # Zero the accumulators (beta = 0).
        for r in range(regs.n_acc):
            b.mov(regs.acc + r, RZ, stall=1)
        b.nop(stall=6)

    # ------------------------------------------------------- tile movement

    def ldg_items(self, predicated: bool) -> list:
        """Emitters for the LDG.128s fetching the next tile."""
        regs = self.regs
        pred = self.P_LOOP if predicated else None
        items = []
        for which, stage, base, n_ldg, bar in (
            ("a", regs.stage_a, regs.ldg_base_a, regs.n_ldg_a, self.BAR_LDG_A),
            ("b", regs.stage_b, regs.ldg_base_b, regs.n_ldg_b, self.BAR_LDG_B),
        ):
            for i in range(n_ldg):
                def emit(i=i, stage=stage, base=base, bar=bar, pred=pred):
                    self.b.ldg(stage + 4 * i, base + i, width=128,
                               stall=1, wb=bar, pred=pred)
                items.append(emit)
        return items

    def ldg_advance_items(self) -> list:
        """Emitters advancing the per-thread global pointers by one b_k."""
        regs = self.regs
        delta = self.cfg.ab_element_bytes * self.cfg.b_k
        items = []
        for base, n in ((regs.ldg_base_a, regs.n_ldg_a),
                        (regs.ldg_base_b, regs.n_ldg_b)):
            for i in range(n):
                def emit(base=base, i=i):
                    self.b.iadd3(base + i, Reg(base + i), delta, RZ, stall=1)
                items.append(emit)
        return items

    def emit_sts_batch(self, predicated: bool, sched=None) -> None:
        """Queue (or emit) the STS.128s writing the staged tile to shared."""
        cfg, regs = self.cfg, self.regs
        stride2 = self.plan.a.row_stride_bytes
        cpr = self._cpr
        rows_per_group = self.threads // cpr
        pred = self.P_LOOP if predicated else None
        items = []
        for which, stage, sts_base, n_ldg, bar in (
            ("a", regs.stage_a, self.R_A_STS, regs.n_ldg_a, self.BAR_LDG_A),
            ("b", regs.stage_b, self.R_B_STS, regs.n_ldg_b, self.BAR_LDG_B),
        ):
            for i in range(n_ldg):
                wait = (bar,) if i == 0 else ()
                def emit(i=i, stage=stage, sts_base=sts_base, wait=wait,
                         pred=pred):
                    self.b.sts(sts_base, stage + 4 * i,
                               offset=i * rows_per_group * stride2,
                               width=128, stall=1, wait=wait, pred=pred)
                items.append(emit)
        if sched is not None:
            # Fixed spacing: this is the paper's explicit Fig. 4 knob.
            sched.add(items, spacing=self.cfg.sts_interleave, fixed=True)
        else:
            for emit in items:
                emit()

    def _lds_items(self, ki: int, defer_a_from: int = None,
                   defer_b_from: int = None) -> tuple:
        """Emitter lists for slice *ki*'s fragment gathers: (A ops, B ops).

        A items come two LDS.32 per 16x8 operand; B items one per 8x8
        operand.  Operands past the ``defer_*_from`` indices are tagged
        with the deferral scoreboards instead of the slice's fragment
        barrier (used by the split slice-0 prefetch).
        """
        cfg, regs = self.cfg, self.regs
        buf = ki % 2
        bar = self.BAR_FRAG0 + buf
        stride2 = self.plan.a.row_stride_bytes
        if cfg.smem_swizzle:
            a_lds, b_lds = regs.swz_base_a + ki, regs.swz_base_b + ki
            k_off = 0  # the per-slice base already encodes the chunk
        else:
            a_lds, b_lds = self.R_A_LDS, self.R_B_LDS
            k_off = cfg.w_k * cfg.ab_element_bytes * ki
        a_items, b_items = [], []
        a_base = self._frag_buf("a", buf)
        per_op = self._a_regs_per_op
        for op in range(cfg.w_m // self._a_op_rows):
            op_bar = bar
            if defer_a_from is not None and op >= defer_a_from:
                op_bar = self.BAR_DEFER_A
            for half in range(per_op):
                reg = a_base + op * per_op + half
                # f16 registers pair over 8-row halves; pairs beyond the
                # first step k by 16 bytes (HMMA.16816's k=8..15 operands).
                row = (half & 1) * 8 if per_op > 1 else 0
                off = ((op * self._a_op_rows + row) * stride2
                       + k_off + (half >> 1) * 16)
                def emit(reg=reg, off=off, bar=op_bar, a_lds=a_lds):
                    self.b.lds(reg, a_lds, offset=off, width=32,
                               stall=1, wb=bar)
                a_items.append(emit)
        b_base = self._frag_buf("b", buf)
        b_per_op = self._b_regs_per_op
        for j in range(cfg.w_n // 8):
            j_bar = bar
            if defer_b_from is not None and j >= defer_b_from:
                j_bar = self.BAR_DEFER_B
            for half in range(b_per_op):
                # The second B register is the k=8..15 column fragment.
                reg = b_base + j * b_per_op + half
                off = j * 8 * stride2 + k_off + half * 16
                def emit(reg=reg, off=off, bar=j_bar, b_lds=b_lds):
                    self.b.lds(reg, b_lds, offset=off, width=32,
                               stall=1, wb=bar)
                b_items.append(emit)
        return a_items, b_items

    def emit_lds_slice(self, ki: int, sched=None) -> None:
        """Queue (or emit) the LDS.32 fragment gathers for slice *ki*."""
        a_items, b_items = self._lds_items(ki)
        items = a_items + b_items
        if sched is not None:
            sched.add(items, spacing=self.lds_spacing)
        else:
            for emit in items:
                emit()

    @property
    def slice0_split_op(self) -> int:
        """First A-operand index deferred past the trailing barrier."""
        return 1

    @property
    def slice0_split_b(self) -> int:
        """First B-operand index deferred past the trailing barrier.

        B operands are consumed within the first ``w_n/8`` HMMAs of the
        slice (j-inner ordering), so deferring them past the barrier would
        invert program order; the full B batch stays in the head.
        """
        return self.cfg.w_n // 8

    def _slice0_head_tail(self) -> tuple:
        """Slice-0 fragment emitters, split into (head, tail).

        The head (first A operand + first half of B) is emitted right
        after the trailing barrier; the tail interleaves into slice 0's
        HMMA stream under the deferral scoreboards, shrinking the
        serial-LDS bubble at the iteration boundary.
        """
        a_items, b_items = self._lds_items(
            0, defer_a_from=self.slice0_split_op,
            defer_b_from=self.slice0_split_b,
        )
        split = self._a_regs_per_op * self.slice0_split_op
        b_split = self._b_regs_per_op * self.slice0_split_b
        head = a_items[:split] + b_items[:b_split]
        tail = a_items[split:] + b_items[b_split:]
        return head, tail

    def emit_lds_slice0_head(self) -> None:
        for emit in self._slice0_head_tail()[0]:
            emit()

    # ----------------------------------------------------------- main loop

    def _hmma_emitters(self, ki: int) -> list:
        cfg = self.cfg
        buf = ki % 2
        wait_bar = self.BAR_FRAG0 + buf
        a_base = self._frag_buf("a", buf)
        b_base = self._frag_buf("b", buf)
        emitters = []
        first = True
        per_op = self._a_regs_per_op
        for i in range(cfg.w_m // self._a_op_rows):
            for j in range(cfg.w_n // 8):
                acc = self._acc_pair(i, j)
                wait = ()
                if first:
                    wait = (wait_bar,)
                elif ki == 0 and i == self.slice0_split_op and j == 0:
                    # First consumer of the A operands whose loads were
                    # deferred past the trailing barrier.
                    wait = (self.BAR_DEFER_A,)
                elif ki == 0 and i == 0 and j == self.slice0_split_b:
                    wait = (self.BAR_DEFER_B,)
                def emit(acc=acc, a=a_base + per_op * i,
                         bb=b_base + self._b_regs_per_op * j, wait=wait):
                    if self._is_int8:
                        self.b.imma_8816(acc, a, bb, acc, stall=2, wait=wait)
                    else:
                        self.b.hmma(self.arch, acc, a, bb, acc, stall=2,
                                    wait=wait, f32=self.cfg.accum_f32)
                emitters.append(emit)
                first = False
        return emitters

    def emit_main_loop(self) -> None:
        b, cfg = self.b, self.cfg
        # Spread the tile prefetch over slices 0..S-2: a single slice's
        # HMMA window cannot absorb the whole LDG burst without stalling
        # the memory-IO queue (and with it, the tensor pipes).
        ldg_per_slice = [[] for _ in range(self.slices - 1)]
        adv_per_slice = [[] for _ in range(self.slices - 1)]
        if cfg.prefetch:
            for idx, item in enumerate(self.ldg_items(predicated=True)):
                ldg_per_slice[idx % (self.slices - 1)].append(item)
            for idx, item in enumerate(self.ldg_advance_items()):
                adv_per_slice[idx % (self.slices - 1)].append(item)

        b.label("KLOOP")
        for ki in range(self.slices):
            sched = InterleaveScheduler()
            if ki == 0:
                # Tail of this tile's slice-0 fragment loads (their head
                # sits before the loop / before the back edge).
                sched.add(self._slice0_head_tail()[1], spacing=self.lds_spacing)
            if ki == 0:
                # Loop bookkeeping rides along on the ALU pipe.  After the
                # decrement, P_LOOP means "a next tile exists", which also
                # guards this iteration's prefetch and tile store.  The
                # decrement's stall count must cover the fixed ALU latency:
                # the ISETP is the next ALU slot, and on fast-HMMA
                # generations (Volta's CPI-4 .884 pipe) the surrounding
                # schedule no longer spaces the pair far enough apart for
                # the read to see the decremented value.
                sched.add(lambda: b.iadd3(self.R_COUNTER, Reg(self.R_COUNTER),
                                          -1, RZ, stall=5), spacing=1)
                sched.add(lambda: b.isetp(self.P_LOOP, Reg(self.R_COUNTER), 0,
                                          cmp="GT", stall=1), spacing=1)
            if ki < self.slices - 1:
                self.emit_lds_slice(ki + 1, sched)
                sched.add(ldg_per_slice[ki])
                sched.add(adv_per_slice[ki])
            if ki == self.slices - 1:
                if not cfg.prefetch:
                    # Prefetch disabled: fetch the next tile right before it
                    # is needed, fully exposing the global-memory latency.
                    for item in self.ldg_items(predicated=True):
                        item()
                    for item in self.ldg_advance_items():
                        item()
                # After this barrier no warp reads the current shared tile:
                # every remaining fragment already sits in registers.
                b.bar_sync(stall=1)
                self.emit_sts_batch(predicated=True, sched=sched)
            sched.run(self._hmma_emitters(ki))
        b.bar_sync(stall=1)
        self.emit_lds_slice0_head()  # slice 0 of the next tile (head only)
        b.bra("KLOOP", pred=self.P_LOOP, stall=5)

    # ------------------------------------------------------------ epilogue

    def emit_epilogue(self) -> None:
        b, cfg = self.b, self.cfg
        ce = cfg.c_element_bytes
        row_stride = ce * self.prob.n
        b.nop(stall=15)  # drain the last HMMA's 14-cycle latency
        for i in range(cfg.w_m // self._a_op_rows):
            for j in range(cfg.w_n // 8):
                acc = self._acc_pair(i, j)
                col_off = j * 8 * ce
                if self._is_int8:
                    # s32 fragments: one 8x8 op, both column elements in
                    # consecutive registers -> a single STG.64.
                    b.stg(self.R_C, acc, offset=col_off, width=64, stall=1)
                    continue
                if cfg.accum_f32:
                    # FP32 fragments: a lane's two column elements sit in
                    # two consecutive registers -> one STG.64 per 8 rows.
                    b.stg(self.R_C, acc, offset=col_off, width=64, stall=1)
                    b.stg(self.R_C, acc + 2, offset=col_off + 8 * row_stride,
                          width=64, stall=1)
                    continue
                # One STG.32 per 8-row half fragment (HMMA.884's 8x8 D is a
                # single register; 16-row shapes store two).
                offsets = tuple(col_off + h * 8 * row_stride
                                for h in range(self._acc_stride))
                if self.prob.needs_scaling:
                    self._emit_scaling(acc, offsets)
                for half, off in enumerate(offsets):
                    b.stg(self.R_C, acc + half, offset=off, width=32, stall=1)
            b.iadd3(self.R_C, Reg(self.R_C), self._a_op_rows * row_stride,
                    RZ, stall=6)
        b.exit()

    def _emit_scaling(self, acc: int, offsets) -> None:
        """Apply ``alpha * acc + beta * C_old`` to one accumulator pair.

        Packed ``HFMA2`` does both halves of each register at once; the
        old C values stage through the (epilogue-dead) LDG staging regs.
        """
        b, prob = self.b, self.prob
        stage = self.regs.stage_a
        if prob.beta != 0.0:
            for half, off in enumerate(offsets):
                b.ldg(stage + half, self.R_C, offset=off, width=32,
                      stall=1, wb=self.BAR_LDG_A)
        if prob.alpha != 1.0:
            for half in range(len(offsets)):
                # acc = acc * alpha + 0
                b.hfma2(acc + half, acc + half, self.R_ALPHA, 255, stall=6)
        if prob.beta != 0.0:
            for half in range(len(offsets)):
                wait = (self.BAR_LDG_A,) if half == 0 else ()
                # acc = C_old * beta + acc
                b.hfma2(acc + half, stage + half, self.R_BETA, acc + half,
                        stall=6, wait=wait)

    # ---------------------------------------------------------------- glue

    def build(self) -> Program:
        self.emit_prologue()
        # Pipeline fill: tile 0 + slice-0 fragments.
        for item in self.ldg_items(predicated=False):
            item()
        self.emit_sts_batch(predicated=False)
        for item in self.ldg_advance_items():
            item()
        b = self.b
        b.bar_sync(stall=1)
        self.emit_lds_slice0_head()
        b.nop(stall=6)
        self.emit_main_loop()
        self.emit_epilogue()
        return b.build()


def build_hgemm(config: KernelConfig, problem: HgemmProblem,
                spec: GpuSpec = RTX2070) -> Program:
    """Build the complete HGEMM kernel program.

    The returned :class:`~repro.isa.program.Program` runs on both the
    functional simulator (for correctness, any grid) and the timing
    simulator (for per-CTA cycle measurements).
    """
    return _HgemmEmitter(config, problem, spec).build()
