"""Kernel configuration: the tuning knobs of the blocked HGEMM.

A :class:`KernelConfig` captures every design decision the paper evaluates:

* thread-block (CTA) tile ``(b_m, b_n, b_k)`` -- shared-memory blocking;
* warp tile ``(w_m, w_n, w_k)`` -- register blocking;
* shared-memory padding (Fig. 5's layout ablation);
* STS interleave depth (Fig. 4's scheduling ablation);
* prefetching (software pipelining) on/off;
* CTA launch order (row-major vs L2-friendly supertiles).

Two presets matter: :func:`ours` is the paper's optimized kernel
(256x256x32 / 128x64x8, padded, 5-HMMA STS interleave); :func:`cublas_like`
reproduces the cuBLAS 10.1 configuration from Table VII (128x128x64 /
64x64x8, no padding, 2-HMMA STS interleave).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["KernelConfig", "ours", "cublas_like", "ConfigError", "adapt_for_arch"]


class ConfigError(ValueError):
    """Raised when a kernel configuration is infeasible on the hardware."""


@dataclass(frozen=True)
class KernelConfig:
    """Full parameterisation of one blocked Tensor Core HGEMM kernel."""

    b_m: int = 256
    b_n: int = 256
    b_k: int = 32
    w_m: int = 128
    w_n: int = 64
    w_k: int = 8
    smem_pad_halves: int = 8      # extra halves per tile row (0 = naive)
    smem_swizzle: bool = False    # XOR-swizzled chunks (cuBLAS-style, 0 pad)
    sts_interleave: int = 5       # HMMAs between consecutive STS.128
    prefetch: bool = True         # software pipelining of global loads
    cta_order: str = "row"        # "row" or "supertile"
    supertile_width: int = 8      # CTAs per supertile column when swizzled
    accum_f32: bool = False       # HMMA.1688.F32: FP32 accumulators, FP32 C
    ab_dtype: str = "f16"         # operand type: "f16" (HMMA) or "s8" (IMMA)
    name: str = ""

    def __post_init__(self) -> None:
        if self.b_m % self.w_m or self.b_n % self.w_n or self.b_k % self.w_k:
            raise ConfigError(
                f"warp tile {self.warp_tile} must divide CTA tile {self.cta_tile}"
            )
        if self.w_m % 8 or self.w_n % 8 or self.w_k % 8:
            raise ConfigError(
                f"warp tile {self.warp_tile} must be a multiple of the "
                "8x8x8 HMMA granularity (generation-specific shapes are "
                "checked in validate_against)"
            )
        if self.num_warps not in (1, 2, 4, 8, 16):
            raise ConfigError(
                f"{self.num_warps} warps/CTA; must be a power of two <= 16"
            )
        if self.sts_interleave < 1:
            raise ConfigError("sts_interleave must be >= 1")
        if self.smem_pad_halves % 8:
            raise ConfigError(
                "smem padding must be a multiple of 8 halves (16 bytes) to "
                "keep STS.128 aligned"
            )
        if self.smem_swizzle:
            if self.smem_pad_halves:
                raise ConfigError(
                    "swizzling replaces padding; set smem_pad_halves=0"
                )
            if self.b_k != 64:
                raise ConfigError(
                    "the XOR swizzle permutes 8 16-byte chunks per row and "
                    "therefore requires b_k = 64"
                )
            if self.w_k * self.ab_element_bytes != 16:
                raise ConfigError(
                    "the XOR swizzle keeps each k-slice in one 16-byte "
                    f"chunk; w_k={self.w_k} at {self.ab_element_bytes} "
                    "B/element does not form one"
                )
        if self.cta_order not in ("row", "supertile"):
            raise ConfigError(f"unknown cta_order {self.cta_order!r}")
        if self.ab_dtype not in ("f16", "s8"):
            raise ConfigError(f"ab_dtype must be 'f16' or 's8', got {self.ab_dtype!r}")
        if self.ab_dtype == "s8":
            if self.accum_f32:
                raise ConfigError("int8 kernels accumulate in s32, not f32")
            if self.w_k % 16 or self.b_k % self.w_k:
                raise ConfigError("int8 warp tiles step k in multiples of 16")
            if self.w_m % 8:
                raise ConfigError("int8 warp tiles need w_m % 8 == 0")

    # ------------------------------------------------------------- geometry

    @property
    def cta_tile(self) -> tuple:
        return (self.b_m, self.b_n, self.b_k)

    @property
    def warp_tile(self) -> tuple:
        return (self.w_m, self.w_n, self.w_k)

    @property
    def num_warps(self) -> int:
        return (self.b_m // self.w_m) * (self.b_n // self.w_n)

    @property
    def threads_per_cta(self) -> int:
        return 32 * self.num_warps

    @property
    def ab_element_bytes(self) -> int:
        """Bytes per A/B element (2 for FP16, 1 for INT8)."""
        return 1 if self.ab_dtype == "s8" else 2

    @property
    def smem_pad_elems(self) -> int:
        """Row padding in *elements*: the knob is specified in halves
        (16-byte granularity = 8 halves); int8 tiles pad the same bytes."""
        return self.smem_pad_halves * 2 // self.ab_element_bytes

    @property
    def smem_row_halves(self) -> int:
        """Shared tile row stride in elements (b_k plus padding)."""
        return self.b_k + self.smem_pad_elems

    @property
    def smem_row_bytes(self) -> int:
        return self.smem_row_halves * self.ab_element_bytes

    @property
    def smem_tile_bytes(self) -> int:
        """Bytes of one operand tile in shared memory (A: b_m rows)."""
        return self.b_m * self.smem_row_bytes

    @property
    def smem_bytes(self) -> int:
        """Total static shared memory per CTA (A tile + B tile)."""
        return (self.b_m + self.b_n) * self.smem_row_bytes

    # ------------------------------------------------------ register budget

    @property
    def accumulator_regs(self) -> int:
        """Registers per thread holding the C fragments.

        A warp accumulates w_m x w_n halves = w_m*w_n/64 warp registers;
        FP32 accumulators (``HMMA.1688.F32``'s 128-bit register groups)
        double that -- which is why the paper's 128x64 warp tile only
        works with FP16 accumulation.
        """
        regs = (self.w_m * self.w_n) // 64
        if self.accum_f32 or self.ab_dtype == "s8":
            return 2 * regs  # 32-bit accumulators
        return regs

    @property
    def c_element_bytes(self) -> int:
        """Bytes per C element (2 for FP16; 4 for FP32 or INT32)."""
        return 4 if (self.accum_f32 or self.ab_dtype == "s8") else 2

    @property
    def regs_per_thread(self) -> int:
        """Estimated total register demand per thread.

        Accumulators + A/B fragments (double-buffered) + prefetch staging +
        addressing scratch.  The estimate mirrors the paper's feasibility
        arguments (Section VI-A: 128x128 warp tiles exceed 256 registers).
        """
        frags = 2 * (self.w_m // 64 + self.w_n // 64) * (self.w_k // 8) * 4
        ldg_stage = 0
        if self.prefetch:
            per_thread_halves = (self.b_m + self.b_n) * self.b_k // self.threads_per_cta
            ldg_stage = max(4, per_thread_halves // 4)
        scratch = 16
        return self.accumulator_regs + frags + ldg_stage + scratch

    def grid_dim(self, m: int, n: int) -> tuple:
        """CTAs along (n, m) -- x covers columns of C, y covers rows."""
        return ((n + self.b_n - 1) // self.b_n, (m + self.b_m - 1) // self.b_m)

    # ----------------------------------------------------- analysis helpers

    @property
    def compute_intensity(self) -> float:
        """FLOPs per byte at the CTA-tile level (paper Section VI-A-2):
        2*b_m*b_n*b_k ops over 2*(b_m+b_n)*b_k bytes = b_m*b_n/(b_m+b_n)."""
        return (self.b_m * self.b_n) / (self.b_m + self.b_n)

    def validate_against(self, spec) -> None:
        """Raise :class:`ConfigError` if the kernel cannot launch on *spec*."""
        arch = getattr(spec, "arch", None)
        if arch is not None:
            if self.ab_dtype == "f16":
                if self.w_k % arch.hmma_k:
                    raise ConfigError(
                        f"w_k={self.w_k} is not a multiple of the native "
                        f"HMMA k-step {arch.hmma_k} on {arch.name} "
                        f"(SM{arch.sm_version}); see adapt_for_arch"
                    )
                if self.w_m % arch.hmma_m or self.w_n % arch.hmma_n:
                    raise ConfigError(
                        f"warp tile {self.warp_tile} must be a multiple of "
                        f"{arch.name}'s {arch.hmma_m}x{arch.hmma_n}x"
                        f"{arch.hmma_k} HMMA shape"
                    )
                if self.accum_f32 and not arch.supports_f32_accum:
                    raise ConfigError(
                        f"{arch.name} (SM{arch.sm_version}) HMMA has no "
                        "FP32-accumulate form"
                    )
            elif self.ab_dtype == "s8" and not arch.supports_imma:
                raise ConfigError(
                    f"{arch.name} (SM{arch.sm_version}) has no IMMA "
                    "(int8 Tensor Core ops arrived with Turing)"
                )
        if self.smem_bytes > spec.smem_per_sm_bytes:
            raise ConfigError(
                f"{self.smem_bytes} B of shared memory exceeds the SM's "
                f"{spec.smem_per_sm_bytes} B (paper: b_k <= 64 at 256x256)"
            )
        if self.regs_per_thread > spec.max_regs_per_thread:
            raise ConfigError(
                f"~{self.regs_per_thread} registers/thread exceeds the "
                f"{spec.max_regs_per_thread}-register limit (paper: 128x128 "
                "warp tiles are infeasible)"
            )
        cta_regs = self.regs_per_thread * self.threads_per_cta
        if cta_regs > spec.registers_per_sm:
            raise ConfigError(
                f"~{cta_regs} registers/CTA exceeds the SM's "
                f"{spec.registers_per_sm} registers (paper: 512x256 CTA "
                "tiles occupy the whole register file)"
            )

    def with_(self, **kwargs) -> "KernelConfig":
        """Functional update (for ablations)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        return (
            f"{self.name or 'hgemm'}: CTA {self.b_m}x{self.b_n}x{self.b_k}, "
            f"warp {self.w_m}x{self.w_n}x{self.w_k}, "
            f"{self.num_warps} warps, smem {self.smem_bytes // 1024} KB, "
            f"pad {self.smem_pad_halves}, STS interleave {self.sts_interleave}, "
            f"prefetch {'on' if self.prefetch else 'off'}, "
            f"order {self.cta_order}"
        )


def adapt_for_arch(config: KernelConfig, arch) -> KernelConfig:
    """Adapt a preset stated in Turing terms to another generation's shape.

    The presets in this module encode the paper's Turing tuning (HMMA.1688,
    k-step 8, 2-register A operands).  Other generations move two knobs:

    * the native k-step -- SM80's HMMA.16816 consumes k=16 per instruction,
      so an f16 ``w_k`` below the native k is raised to it;
    * the A-operand register footprint -- SM80's 4-register A fragments
      double the double-buffered A budget, so the paper's 128-wide warp
      tile no longer fits in 256 registers and is halved to 64;
    * the XOR swizzle permutes 16-byte k-slices and is only defined when a
      k-slice is exactly 16 bytes; otherwise fall back to padded rows.

    Returns *config* unchanged when nothing needs adapting (SM70/SM75).
    """
    changes = {}
    if config.ab_dtype == "f16":
        if config.w_k % arch.hmma_k:
            changes["w_k"] = arch.hmma_k
        if arch.a_regs >= 4 and config.w_m > 64:
            changes["w_m"] = 64
    w_k = changes.get("w_k", config.w_k)
    if config.smem_swizzle and w_k * config.ab_element_bytes != 16:
        changes["smem_swizzle"] = False
        changes["smem_pad_halves"] = 8
    if not changes:
        return config
    return config.with_(**changes)


def ours(**overrides) -> KernelConfig:
    """The paper's optimized configuration (Section VI / Table VII)."""
    base = KernelConfig(
        b_m=256, b_n=256, b_k=32,
        w_m=128, w_n=64, w_k=8,
        smem_pad_halves=8,
        sts_interleave=5,
        prefetch=True,
        cta_order="row",     # the paper defers L2-friendly launch order
        name="ours",         # to future work (Section VIII)
    )
    return base.with_(**overrides) if overrides else base


def ours_f32(**overrides) -> KernelConfig:
    """FP32-accumulator variant (the paper's Section VIII future work:
    "demystifying Tensor Cores with single-precision accumulators").

    The doubled accumulator footprint forces the warp tile down to 64x64
    and the CTA tile to 256x128 (a 256x256 tile would need 16 warps whose
    FP32 accumulators alone overflow the SM's register file); every
    scheduling optimization carries over.
    """
    base = KernelConfig(
        b_m=256, b_n=128, b_k=32,
        w_m=64, w_n=64, w_k=8,
        smem_pad_halves=8,
        sts_interleave=5,
        prefetch=True,
        cta_order="row",
        accum_f32=True,
        name="ours-f32",
    )
    return base.with_(**overrides) if overrides else base


def ours_int8(**overrides) -> KernelConfig:
    """INT8 Tensor Core GEMM (the paper's Section VIII "integer data type"
    future work): ``IMMA.8816.S8.S8`` with s32 accumulation.

    INT8 halves the operand bytes (doubling the tile's compute intensity)
    and doubles the tensor-pipe rate, so the same 80-byte padded rows stay
    bank-conflict-free and the blocking analysis carries over.
    """
    base = KernelConfig(
        b_m=256, b_n=128, b_k=64,   # 64 int8 along k = the fp16 tile's bytes
        w_m=64, w_n=64, w_k=16,
        smem_pad_halves=8,          # same 16 bytes of padding per row
        sts_interleave=5,
        prefetch=True,
        cta_order="row",
        ab_dtype="s8",
        name="ours-int8",
    )
    return base.with_(**overrides) if overrides else base


def cublas_like(**overrides) -> KernelConfig:
    """The cuBLAS 10.1 HGEMM configuration the paper reports (Table VII):
    128x128x64 CTA tile, 64x64x8 warp tile, 32 KB of un-padded shared
    memory, and the 2-HMMA STS interleave of Section VI-C."""
    base = KernelConfig(
        b_m=128, b_n=128, b_k=64,
        w_m=64, w_n=64, w_k=8,
        smem_pad_halves=0,
        smem_swizzle=True,   # cuBLAS's "economical" 32 KB layout: no
        sts_interleave=2,    # padding, conflicts avoided by XOR swizzle
        prefetch=True,
        cta_order="row",
        name="cublas-like",
    )
    return base.with_(**overrides) if overrides else base
