"""CPI-guided instruction interleaving (paper Section VI-C).

The paper's principle (Eq. 6): a memory-IO instruction with cycles-per-
instruction ``CPI_mem`` must be separated from the next one by at least

    #HMMA >= 4 * CPI_mem / CPI_HMMA

HMMA instructions, because the four processing blocks' tensor pipes all
advance while the single SM-wide memory-IO pipe digests one access.  Too
little spacing (cuBLAS's 2-HMMA STS interleave) makes warps block on the
busy memory pipe *in order*, starving their tensor pipes -- that is the
entire mechanism behind Fig. 4.

:class:`InterleaveScheduler` performs the placement: it walks a stream of
HMMA emitters and injects each queued memory/ALU emitter once its spacing
requirement is met.  Emitters are thunks so the scheduler composes with the
:class:`~repro.isa.builder.ProgramBuilder` without an IR round trip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..arch.turing import GpuSpec

__all__ = ["spacing_for", "InterleaveScheduler"]


def spacing_for(spec: GpuSpec, kind: str, width: int = 128) -> int:
    """Minimum HMMAs between two memory instructions of *kind* (Eq. 6)."""
    blocks = spec.processing_blocks_per_sm
    cpi = {
        "sts": spec.sts_cpi.cpi(width),
        "lds": spec.lds_cpi.cpi(width),
        "ldg": spec.ldg_l2_cpi.cpi(width),
        "stg": spec.stg_cpi.cpi(width),
    }[kind]
    return max(1, math.ceil(blocks * cpi / spec.hmma_cpi))


@dataclass
class _Pending:
    emit: object          # zero-arg callable that emits one instruction
    due_at: int           # HMMA index after which this may be emitted
    order: int            # stable queue order


@dataclass
class InterleaveScheduler:
    """Placement of memory/ALU emitters into an HMMA stream.

    Two placement modes:

    * **fixed** -- the emitter is due exactly ``spacing`` HMMAs after the
      previous fixed emitter.  Used for STS, whose spacing is the paper's
      explicit tuning knob (Fig. 4: 2 vs 5 HMMAs).  Under-spaced fixed ops
      bunch up and throttle the memory pipe -- by design.
    * **flexible** -- the emitters are spread evenly over the first
      ``window_frac`` of the HMMA stream at :meth:`run` time (LDS, LDG,
      pointer bookkeeping).  Front-loading them slightly lets the last
      fragment loads of a slice complete before the next slice's first
      HMMA needs them; this is what a careful SASS programmer does by hand.
    """

    fixed: list = field(default_factory=list)
    flexible: list = field(default_factory=list)
    window_frac: float = 0.85
    _cursor: int = 0      # due index for the next fixed op

    def add(self, emit, spacing: int = 1, count: int = 1,
            fixed: bool = False) -> None:
        """Queue *count* copies of *emit* (or a list of emitters)."""
        emitters = emit if isinstance(emit, (list, tuple)) else [emit] * count
        for fn in emitters:
            if fixed:
                self.fixed.append(_Pending(emit=fn, due_at=self._cursor,
                                           order=len(self.fixed)))
                self._cursor += spacing
            else:
                self.flexible.append(fn)

    def run(self, hmma_emitters) -> int:
        """Emit all HMMAs with queued ops interleaved at their due points.

        Fixed ops keep their requested positions; flexible ops fill the
        stream evenly.  Ops due past the end of the stream are emitted
        back-to-back at the end (over-subscription: the simulator will show
        the memory pipe throttling).  Returns the number of tail-emitted
        ops.
        """
        hmmas = list(hmma_emitters)
        n = len(hmmas)
        window = max(1, int(n * self.window_frac))
        pending = list(self.fixed)
        n_flex = len(self.flexible)
        for i, fn in enumerate(self.flexible):
            due = (i * window) // n_flex if n_flex else 0
            pending.append(_Pending(emit=fn, due_at=due,
                                    order=len(self.fixed) + i))
        pending.sort(key=lambda p: (p.due_at, p.order))

        qi = 0
        for h_index, emit_hmma in enumerate(hmmas):
            while qi < len(pending) and pending[qi].due_at <= h_index:
                pending[qi].emit()
                qi += 1
            emit_hmma()
        leftover = len(pending) - qi
        while qi < len(pending):
            pending[qi].emit()
            qi += 1
        self.fixed.clear()
        self.flexible.clear()
        self._cursor = 0
        return leftover
