"""Analytical blocking-size model (paper Section VI-A, Eqs. 3-5, Table VI).

The paper's method: for one CTA main-loop iteration (one ``b_k`` slice),
count the cycles the Tensor Core pipes need versus the cycles the single
memory-IO pipe needs, using the *measured* CPIs from Tables I/III/IV.  A
blocking configuration is compute-bound (good) when the HMMA cycles exceed
the memory-IO cycles with margin; otherwise the memory pipe throttles the
Tensor Cores.

The same module also evaluates Eq. (6), the STS interleave rule of
Section VI-C.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from ..arch.turing import GpuSpec
from .config import KernelConfig, adapt_for_arch

__all__ = [
    "PipeCycles",
    "hmma_cycles_per_iteration",
    "ldg_sts_cycles_per_iteration",
    "lds_cycles_per_iteration",
    "pipe_cycles",
    "min_hmma_between_sts",
    "table6_rows",
    "choose_blocking",
]

#: The measured HMMA CPI the paper plugs into Eq. (3) (Table I: 8.06, the
#: Turing figure).  Arch-aware callers default to
#: ``spec.arch.measured_hmma_cpi`` instead (Volta's HMMA.884 retires in
#: ~4 cycles; Ampere's HMMA.16816 matches Turing's 8.06 per instruction).
MEASURED_HMMA_CPI = 8.06


@dataclass(frozen=True)
class PipeCycles:
    """Cycle demand of one CTA main-loop iteration, per pipe."""

    hmma: float
    ldg_sts: float
    lds: float

    @property
    def memory_io(self) -> float:
        """Total memory-IO pipe cycles (LDG + STS + LDS share one pipe)."""
        return self.ldg_sts + self.lds

    @property
    def compute_bound(self) -> bool:
        return self.hmma >= self.memory_io


def hmma_cycles_per_iteration(config: KernelConfig, spec: GpuSpec,
                              hmma_cpi: float = None) -> float:
    """Eq. (3): tensor-pipe cycles per iteration for the whole CTA.

    ``2*b_m*b_n*b_k`` operations, ``2*m*n*k`` per HMMA (the generation's
    native shape), spread over the SM's processing blocks.  ``hmma_cpi``
    defaults to the generation's measured figure (Table I on Turing).
    """
    if hmma_cpi is None:
        hmma_cpi = spec.arch.measured_hmma_cpi
    ops = 2 * config.b_m * config.b_n * config.b_k
    ops_per_hmma = spec.arch.flops_per_hmma
    blocks = spec.processing_blocks_per_sm
    return ops / (ops_per_hmma * blocks) * hmma_cpi


def ldg_sts_cycles_per_iteration(config: KernelConfig, spec: GpuSpec) -> float:
    """Eq. (4): memory-IO cycles to fetch the A and B tiles from global
    memory (LDG.128) and store them to shared memory (STS.128)."""
    halves = (config.b_m + config.b_n) * config.b_k
    bytes_moved = halves * 2
    per_warp_instr_bytes = 32 * 16  # 32 lanes x 16 B
    instructions = bytes_moved / per_warp_instr_bytes
    return instructions * (spec.ldg_l2_cpi.cpi(128) + spec.sts_cpi.cpi(128))


def lds_cycles_per_iteration(config: KernelConfig, spec: GpuSpec) -> float:
    """Eq. (5): memory-IO cycles for fragment loads from shared memory.

    Each warp loads one LDS.32 per fragment register per ``w_k`` slice --
    ``w_m/8 + w_n/8`` on Turing/Volta (and per unit of k on every
    generation); there are ``b_m*b_n/(w_m*w_n)`` warps and ``b_k/w_k``
    slices.
    """
    arch = spec.arch
    warps = (config.b_m * config.b_n) / (config.w_m * config.w_n)
    if config.ab_dtype == "s8":
        frags = config.w_m / 8 + config.w_n / 8
    else:
        frags = (config.w_m / arch.hmma_m * arch.a_regs
                 + config.w_n / arch.hmma_n * arch.b_regs)
    slices = config.b_k / config.w_k
    return warps * frags * slices * spec.lds_cpi.cpi(32)


def pipe_cycles(config: KernelConfig, spec: GpuSpec,
                hmma_cpi: float = None) -> PipeCycles:
    """All three cycle terms for one iteration (the Table VI computation)."""
    return PipeCycles(
        hmma=hmma_cycles_per_iteration(config, spec, hmma_cpi),
        ldg_sts=ldg_sts_cycles_per_iteration(config, spec),
        lds=lds_cycles_per_iteration(config, spec),
    )


def min_hmma_between_sts(spec: GpuSpec, width: int = 128) -> int:
    """Eq. (6): minimum HMMAs to interleave between consecutive STS.

    ``#HMMA * CPI_HMMA >= 4 * CPI_STS`` -- the 4 processing blocks all
    progress while the single memory-IO pipe digests one STS.
    """
    blocks = spec.processing_blocks_per_sm
    return math.ceil(blocks * spec.sts_cpi.cpi(width) / spec.hmma_cpi)


#: The six blocking configurations of Table VI.
TABLE6_CONFIGS = (
    ((128, 128, 32), (64, 64, 8)),
    ((128, 128, 32), (128, 64, 8)),
    ((256, 128, 32), (64, 64, 8)),
    ((256, 128, 32), (128, 64, 8)),
    ((256, 256, 32), (64, 64, 8)),
    ((256, 256, 32), (128, 64, 8)),
)


def table6_rows(spec: GpuSpec) -> list:
    """Regenerate Table VI: (cta_tile, warp_tile, hmma, memory_io) rows."""
    rows = []
    for (bm, bn, bk), (wm, wn, wk) in TABLE6_CONFIGS:
        config = KernelConfig(b_m=bm, b_n=bn, b_k=bk, w_m=wm, w_n=wn, w_k=wk)
        cycles = pipe_cycles(config, spec)
        rows.append(((bm, bn, bk), (wm, wn, wk), cycles.hmma, cycles.memory_io))
    return rows


def choose_blocking(spec: GpuSpec, candidates=TABLE6_CONFIGS,
                    margin: float = 1.0) -> KernelConfig:
    """Pick the blocking the paper's analysis picks: the feasible
    configuration with the largest compute/memory cycle ratio.

    ``margin`` is the minimum hmma/memory ratio to accept; the paper wants
    HMMA cycles "significantly greater" than memory cycles for robustness
    to L2 misses.
    """
    best = None
    best_ratio = 0.0
    for (bm, bn, bk), (wm, wn, wk) in candidates:
        config = KernelConfig(
            b_m=bm, b_n=bn, b_k=bk, w_m=wm, w_n=wn, w_k=wk,
            smem_pad_halves=8, sts_interleave=min_hmma_between_sts(spec),
        )
        config = adapt_for_arch(config, spec.arch)
        try:
            config.validate_against(spec)
        except Exception:
            continue
        cycles = pipe_cycles(config, spec)
        ratio = cycles.hmma / cycles.memory_io
        if ratio >= margin and ratio > best_ratio:
            best, best_ratio = config, ratio
    if best is None:
        raise ValueError(
            "no candidate blocking is compute-bound on this device; "
            "relax the margin or extend the candidate list"
        )
    return best
