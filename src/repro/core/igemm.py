"""Public INT8 GEMM API (paper Section VIII: "integer data type").

``igemm`` runs the generated ``IMMA.8816.S8.S8`` kernel on the functional
simulator: ``C[m,n] (int32) = A[m,k] (int8) @ B[k,n] (int8)``, with exact
32-bit wrap-around accumulation.
"""

from __future__ import annotations

import numpy as np

from ..arch.turing import GpuSpec, RTX2070
from ..sim.functional import FunctionalSimulator
from ..sim.memory import GlobalMemory
from .builder import HgemmProblem, build_hgemm
from .config import ConfigError, KernelConfig, ours_int8

__all__ = ["igemm", "igemm_reference", "IgemmRun"]


def _shrink_int8(config: KernelConfig, m: int, n: int, k: int) -> KernelConfig:
    b_m, b_n, b_k = config.b_m, config.b_n, config.b_k
    w_m, w_n = config.w_m, config.w_n
    while b_m > 64 and m % b_m:
        b_m //= 2
        w_m = min(w_m, b_m)
    while b_n > 64 and n % b_n:
        b_n //= 2
        w_n = min(w_n, b_n)
    while b_k > 32 and k % b_k:
        b_k //= 2
    if m % b_m or n % b_n or k % b_k:
        raise ConfigError(
            f"igemm needs dimensions that are multiples of (64, 64, 32); "
            f"got {m}x{n}x{k}"
        )
    return config.with_(b_m=b_m, b_n=b_n, b_k=b_k, w_m=w_m, w_n=w_n)


class IgemmRun:
    """Result of one simulated IGEMM launch."""

    def __init__(self, c: np.ndarray, config: KernelConfig, stats):
        self.c = c
        self.config = config
        self.stats = stats

    def __array__(self, dtype=None, copy=None):
        arr = self.c
        if dtype is not None:
            arr = arr.astype(dtype)
        return arr


def igemm(a, b, kernel=None, spec: GpuSpec = RTX2070,
          return_run: bool = False, max_workers: int = None,
          engine: str = None):
    """Compute ``C = A @ B`` on int8 operands with s32 accumulation.

    Args:
        a: (m, k) int8 array (row-major on the device).
        b: (k, n) int8 array (stored column-major, i.e. as n x k).
        kernel: an explicit int8 :class:`KernelConfig`, or None for the
            :func:`ours_int8` preset (shrunk to fit the problem).
        spec: target device.
        return_run: also return kernel statistics.
        max_workers: CTA-parallel worker processes for the functional run.
        engine: functional execution engine ("lockstep", "gridlock",
            "predecoded", "reference"); ``None`` defers to
            ``REPRO_FUNC_ENGINE``.

    Returns:
        (m, n) int32 array, or an :class:`IgemmRun` when *return_run*.
    """
    a8 = np.ascontiguousarray(a, dtype=np.int8)
    b8 = np.ascontiguousarray(b, dtype=np.int8)
    if a8.ndim != 2 or b8.ndim != 2 or a8.shape[1] != b8.shape[0]:
        raise ValueError(f"incompatible operands: A{a8.shape} @ B{b8.shape}")
    m, k = a8.shape
    n = b8.shape[1]
    if kernel is None:
        config = _shrink_int8(ours_int8(), m, n, k)
    else:
        if kernel.ab_dtype != "s8":
            raise ValueError("igemm needs an int8 kernel config")
        config = kernel

    def aligned(nbytes: int) -> int:
        return (nbytes + 255) // 256 * 256

    a_addr = 256
    b_addr = a_addr + aligned(a8.nbytes)
    c_addr = b_addr + aligned(b8.nbytes)
    memory = GlobalMemory(c_addr + aligned(4 * m * n) + 256)
    memory.write_array(a_addr, a8)
    memory.write_array(b_addr, np.ascontiguousarray(b8.T))  # n x k

    problem = HgemmProblem(m=m, n=n, k=k, a_addr=a_addr, b_addr=b_addr,
                           c_addr=c_addr)
    program = build_hgemm(config, problem, spec)
    stats = FunctionalSimulator(engine=engine).run(
        program, memory, grid_dim=config.grid_dim(m, n),
        max_workers=max_workers)
    out = memory.read_array(c_addr, np.int32, m * n).reshape(m, n)
    if return_run:
        return IgemmRun(out, config, stats)
    return out


def igemm_reference(a, b) -> np.ndarray:
    """Exact int8 GEMM oracle with s32 wrap-around accumulation."""
    a8 = np.ascontiguousarray(a, dtype=np.int8).astype(np.int64)
    b8 = np.ascontiguousarray(b, dtype=np.int8).astype(np.int64)
    full = a8 @ b8
    return (full & 0xFFFFFFFF).astype(np.uint32).view(np.int32)
