"""The paper's primary contribution: the optimized Tensor Core HGEMM."""

from .blocking import (
    PipeCycles,
    choose_blocking,
    hmma_cycles_per_iteration,
    ldg_sts_cycles_per_iteration,
    lds_cycles_per_iteration,
    min_hmma_between_sts,
    pipe_cycles,
    table6_rows,
)
from .builder import HgemmProblem, RegisterPlan, build_hgemm
from .config import ConfigError, KernelConfig, cublas_like, ours, ours_f32
from .config import ours_int8
from .hgemm import (
    HgemmRun,
    hgemm,
    hgemm_batched,
    hgemm_reference,
    resolve_config,
)
from .igemm import IgemmRun, igemm, igemm_reference
from .layout import SmemPlan, TileLayout
from .scheduler import InterleaveScheduler, spacing_for
from .verify import CaseResult, VerificationReport, verify_kernel

__all__ = [
    "PipeCycles",
    "choose_blocking",
    "hmma_cycles_per_iteration",
    "ldg_sts_cycles_per_iteration",
    "lds_cycles_per_iteration",
    "min_hmma_between_sts",
    "pipe_cycles",
    "table6_rows",
    "HgemmProblem",
    "RegisterPlan",
    "build_hgemm",
    "ConfigError",
    "KernelConfig",
    "cublas_like",
    "ours",
    "ours_f32",
    "ours_int8",
    "IgemmRun",
    "igemm",
    "igemm_reference",
    "HgemmRun",
    "hgemm",
    "hgemm_batched",
    "hgemm_reference",
    "resolve_config",
    "SmemPlan",
    "TileLayout",
    "InterleaveScheduler",
    "spacing_for",
    "CaseResult",
    "VerificationReport",
    "verify_kernel",
]
