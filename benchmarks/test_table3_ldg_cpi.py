"""Table III -- CPI of LDG on Turing GPUs.

Paper values: L1 hits 4.04 / 4.04 / 8.00 and L2 hits 4.19 / 8.38 / 15.95
for widths 32 / 64 / 128.
"""

import pytest

from repro.arch import RTX2070
from repro.bench import measure_ldg_cpi
from repro.report import format_table

PAPER = {
    ("l1", 32): 4.04, ("l1", 64): 4.04, ("l1", 128): 8.00,
    ("l2", 32): 4.19, ("l2", 64): 8.38, ("l2", 128): 15.95,
}


def test_table3_ldg_cpi(benchmark):
    measured = {}
    for level in ("l1", "l2"):
        for width in (32, 64, 128):
            if (level, width) == ("l2", 128):
                result = benchmark(measure_ldg_cpi, RTX2070, width, level)
            else:
                result = measure_ldg_cpi(RTX2070, width, level)
            measured[(level, width)] = result.cpi

    rows = []
    for level, label in (("l1", "LDG (data in L1 cache)"),
                         ("l2", "LDG (data in L2 cache)")):
        row = [label]
        for width in (32, 64, 128):
            row.append(f"{PAPER[(level, width)]:.2f} / "
                       f"{measured[(level, width)]:.2f}")
        rows.append(tuple(row))
    print()
    print(format_table(
        ["Type", "32 (paper/meas)", "64 (paper/meas)", "128 (paper/meas)"],
        rows, title="Table III: CPI of LDG"))

    for key, paper in PAPER.items():
        assert measured[key] == pytest.approx(paper, abs=0.1)
    # From the SM's view LDG.32 and LDG.64 in L2 have equal throughput;
    # LDG.128 is ~5.1% better (paper Section V-A).
    assert 32 / measured[("l2", 32)] == pytest.approx(
        64 / measured[("l2", 64)], rel=0.01)
    edge = (128 / measured[("l2", 128)]) / (64 / measured[("l2", 64)])
    assert edge == pytest.approx(1.051, abs=0.01)
