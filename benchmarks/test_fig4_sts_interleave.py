"""Fig. 4 -- throughput with STS.128 interleaved by 2 vs 5 HMMAs (RTX 2070).

Paper: STS5 beats STS2 by 1.13x on average, up to 1.26x.  The mechanism:
Eq. (6) requires ceil(4 * CPI_STS128 / CPI_HMMA) = 5 HMMAs to cover one
STS.128; with only 2 the in-order warps block on the saturated memory-IO
queue and starve their tensor pipes.
"""

from conftest import SWEEP_SIZES, speedup_stats

from repro.core import ours
from repro.report import ascii_chart, format_series

PAPER = {"avg_speedup": 1.13, "max_speedup": 1.26}


def test_fig4_sts_interleave(benchmark, pm2070):
    sts5 = ours()                      # the Eq. (6) value
    sts2 = ours(sts_interleave=2)      # cuBLAS's spacing

    def sweep():
        return (
            [pm2070.estimate(sts5, w, w, w).tflops for w in SWEEP_SIZES],
            [pm2070.estimate(sts2, w, w, w).tflops for w in SWEEP_SIZES],
        )

    five, two = benchmark(sweep)
    avg, peak, peak_w = speedup_stats(five, two, SWEEP_SIZES)

    print()
    print(format_series(SWEEP_SIZES, {"STS5": [round(v, 1) for v in five],
                                      "STS2": [round(v, 1) for v in two]}))
    print(ascii_chart(SWEEP_SIZES, {"STS5": five, "STS2": two}))
    print(f"\nSTS5/STS2 speedup: avg {avg:.3f} (paper {PAPER['avg_speedup']}), "
          f"max {peak:.3f} at W={peak_w} (paper {PAPER['max_speedup']})")

    # Shape: STS5 wins at every size; the gap is a modest constant factor.
    assert all(f > t for f, t in zip(five, two))
    assert 1.02 <= avg <= PAPER["avg_speedup"] + 0.05
    assert peak <= PAPER["max_speedup"] + 0.05
