"""Table VII -- kernel details: ours vs cuBLAS 10.1.

Paper values:

                        ours            cuBLAS 10.1
    CTA tile            256x256x32      128x128x64
    warp tile           128x64x8        64x64x8
    shared memory/CTA   36 KB           32 KB
    active CTAs/SM      1               2
    active warps/SM     8               8

Note: our padded layout uses 40 KB/CTA (8 pad halves on every row instead
of every other row -- see DESIGN.md); the occupancy outcome is identical.
"""

from repro.analysis import table7
from repro.arch import RTX2070
from repro.core import cublas_like, ours
from repro.report import format_table

PAPER = {
    "ours": {"cta": (256, 256, 32), "warp": (128, 64, 8),
             "smem_kb": 36, "ctas": 1, "warps": 8},
    "cublas-like": {"cta": (128, 128, 64), "warp": (64, 64, 8),
                    "smem_kb": 32, "ctas": 2, "warps": 8},
}


def test_table7_kernel_details(benchmark):
    rows = benchmark(table7, ours(), cublas_like(), RTX2070)

    printable = []
    for row in rows:
        p = PAPER[row["kernel"]]
        printable.append((
            row["kernel"],
            "x".join(map(str, row["cta_tile"])),
            "x".join(map(str, row["warp_tile"])),
            f"{p['smem_kb']} / {row['smem_per_cta_kb']:.0f}",
            f"{p['ctas']} / {row['ctas_per_sm']}",
            f"{p['warps']} / {row['warps_per_sm']}",
        ))
    print()
    print(format_table(
        ["kernel", "CTA tile", "warp tile", "smem KB (p/m)",
         "CTAs/SM (p/m)", "warps/SM (p/m)"],
        printable, title="Table VII: ours vs cuBLAS 10.1"))

    by_name = {row["kernel"]: row for row in rows}
    for name, paper in PAPER.items():
        row = by_name[name]
        assert row["cta_tile"] == paper["cta"]
        assert row["warp_tile"] == paper["warp"]
        assert row["ctas_per_sm"] == paper["ctas"]
        assert row["warps_per_sm"] == paper["warps"]
    # cuBLAS's economical 32 KB is exact; ours differs (40 vs 36 KB) by the
    # documented padding-granularity substitution.
    assert by_name["cublas-like"]["smem_per_cta_kb"] == 32.0
    assert by_name["ours"]["smem_per_cta_kb"] == 40.0
