"""Future work (Section VIII): "demystifying Tensor Cores with ...
integer data type" -- taken all the way to an IGEMM kernel.

Regenerates the Table-I analogue for ``IMMA.8816.S8.S8`` and measures the
INT8 kernel's device throughput next to the FP16 one.  The paper's
memory-bound thesis sharpens: at twice the tensor rate and half the
operand bytes, even the RTX 2070 goes DRAM-bound.
"""

import numpy as np

from repro.arch import RTX2070
from repro.bench import measure_hmma_cpi, measure_imma_cpi
from repro.core import igemm, igemm_reference, ours, ours_int8
from repro.report import format_table

W = 8192


def test_futurework_imma_instruction(benchmark):
    imma = benchmark(measure_imma_cpi, RTX2070)
    hmma = measure_hmma_cpi(RTX2070)

    rows = [
        ("HMMA.1688.F16", "2048 flops", round(hmma.cpi, 2),
         round(2048 / hmma.cpi, 1)),
        ("IMMA.8816.S8.S8", "2048 int ops", round(imma.cpi, 2),
         round(2048 / imma.cpi, 1)),
    ]
    print()
    print(format_table(
        ["instruction", "work", "CPI", "ops/cycle/block"],
        rows, title="Table I analogue for the integer Tensor Core path"))

    assert imma.cpi < hmma.cpi
    assert hmma.cpi / imma.cpi == (
        __import__("pytest").approx(2.0, rel=0.03))


def test_futurework_igemm_kernel(benchmark, pm2070):
    # Correctness on the simulator.
    rng = np.random.default_rng(0)
    a = rng.integers(-128, 128, (256, 128), dtype=np.int8)
    b = rng.integers(-128, 128, (128, 128), dtype=np.int8)
    c = benchmark(igemm, a, b)
    np.testing.assert_array_equal(c, igemm_reference(a, b))

    # Device throughput vs the FP16 kernel.
    f16 = pm2070.estimate(ours(), W, W, W)
    s8 = pm2070.estimate(ours_int8(), W, W, W)
    int8_peak = 2 * RTX2070.tensor_peak_tflops
    print()
    print(format_table(
        ["kernel", "rate", "bound", "of peak"],
        [("ours (FP16)", f"{f16.tflops:.1f} TFLOPS", f16.bound,
          f"{f16.tflops / RTX2070.tensor_peak_tflops:.0%}"),
         ("ours-int8", f"{s8.tflops:.1f} TOPS", s8.bound,
          f"{s8.tflops / int8_peak:.0%}")],
        title=f"FP16 vs INT8 kernels at W={W} on RTX 2070"))

    assert s8.tflops > 1.2 * f16.tflops
    assert s8.bound == "dram"   # the memory-bound thesis, sharpened
    assert s8.tflops < int8_peak
