"""Table I -- throughput and latency of HMMA.1688.F16.

Paper values: CPI theoretical 8.00, measured 8.06; D first-half latency 10
cycles, second-half 14 cycles.
"""

from repro.arch import RTX2070
from repro.bench import measure_hmma_cpi, measure_hmma_latency
from repro.report import format_comparison, format_table

PAPER = {"cpi_theoretical": 8.00, "cpi_measured": 8.06,
         "latency_first": 10, "latency_second": 14}


def test_table1_hmma_metrics(benchmark):
    cpi = benchmark(measure_hmma_cpi, RTX2070)
    latency = measure_hmma_latency(RTX2070)

    rows = [
        ("CPI theoretical", PAPER["cpi_theoretical"], 8.00),
        ("CPI measured", PAPER["cpi_measured"], round(cpi.cpi, 2)),
        ("Latency, first half of D (cycles)", PAPER["latency_first"],
         latency.first_half),
        ("Latency, second half of D (cycles)", PAPER["latency_second"],
         latency.second_half),
    ]
    print()
    print(format_table(["Metric", "paper", "measured"], rows,
                       title="Table I: HMMA.1688.F16 throughput and latency"))
    for name, paper, measured in rows[1:]:
        print(format_comparison(name, paper, float(measured)))

    assert abs(cpi.cpi - PAPER["cpi_measured"]) < 0.1
    assert latency.first_half == PAPER["latency_first"]
    assert latency.second_half == PAPER["latency_second"]
