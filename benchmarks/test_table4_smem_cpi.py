"""Table IV -- CPI of shared-memory load/store instructions.

Paper values: LDS 2.11 / 4.00 / 8.00 and STS 4.06 / 6.00 / 10.00 for
widths 32 / 64 / 128 (identical on RTX 2070 and T4).
"""

import pytest

from repro.arch import RTX2070, T4
from repro.bench import measure_lds_cpi, measure_sts_cpi
from repro.report import format_table

PAPER = {
    ("LDS", 32): 2.11, ("LDS", 64): 4.00, ("LDS", 128): 8.00,
    ("STS", 32): 4.06, ("STS", 64): 6.00, ("STS", 128): 10.00,
}


def test_table4_smem_cpi(benchmark):
    measured = {}
    for width in (32, 64, 128):
        if width == 32:
            measured[("LDS", width)] = benchmark(
                measure_lds_cpi, RTX2070, width).cpi
        else:
            measured[("LDS", width)] = measure_lds_cpi(RTX2070, width).cpi
        measured[("STS", width)] = measure_sts_cpi(RTX2070, width).cpi

    rows = []
    for op in ("LDS", "STS"):
        row = [op]
        for width in (32, 64, 128):
            row.append(f"{PAPER[(op, width)]:.2f} / {measured[(op, width)]:.2f}")
        rows.append(tuple(row))
    print()
    print(format_table(
        ["Type", "32 (paper/meas)", "64 (paper/meas)", "128 (paper/meas)"],
        rows, title="Table IV: CPI of shared memory instructions"))

    for key, paper in PAPER.items():
        assert measured[key] == pytest.approx(paper, abs=0.1)

    # Same metrics on T4 (paper: "the CPI and throughput are the same").
    assert measure_lds_cpi(T4, 32).cpi == pytest.approx(
        measured[("LDS", 32)], abs=0.02)
    assert measure_sts_cpi(T4, 128).cpi == pytest.approx(
        measured[("STS", 128)], abs=0.02)
