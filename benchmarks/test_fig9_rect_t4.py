"""Fig. 9 -- rectangular matrices on T4.

Paper: same six families; trends match the square case; max speedup 2.17x
at W = 15360 with [W,W,4W]; average 1.45x.
"""

from conftest import speedup_stats

from repro.core import cublas_like, ours

from test_fig8_rect_rtx2070 import SHAPES, SIZES, run_families, summarize

PAPER = {"avg_speedup": 1.45, "max_speedup": 2.17, "max_shape": (1, 1, 4)}


def test_fig9_rect_t4(benchmark, pm_t4):
    table = benchmark(run_families, pm_t4)
    overall_avg, best = summarize(table, "Fig. 9: rectangular HGEMM on T4")

    for shape, (o, c) in table.items():
        avg, _, _ = speedup_stats(o, c, SIZES)
        assert avg > 1.0, f"ours must win family {shape}"
    # Paper: avg 1.45, max 2.17 (family identity differs; see
    # EXPERIMENTS.md).
    assert 1.3 <= overall_avg <= 2.0
    assert best[2] >= 12288
    assert 1.7 <= best[0] <= 2.6
