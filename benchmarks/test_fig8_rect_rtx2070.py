"""Fig. 8 -- rectangular matrices on RTX 2070.

Paper: six shape families ([2W,W,W], [W,2W,W], [W,W,2W], [4W,W,W],
[W,4W,W], [W,W,4W]); trends match the square case; max speedup 3.23x at
W = 14848 with [W,W,4W]; average 1.77x.
"""

from conftest import speedup_stats

from repro.core import cublas_like, ours
from repro.report import format_table

#: The paper's six rectangular families as (m, n, k) multiples of W.
SHAPES = [(2, 1, 1), (1, 2, 1), (1, 1, 2), (4, 1, 1), (1, 4, 1), (1, 1, 4)]
SIZES = [2048, 4096, 8192, 12288, 14848]

PAPER = {"avg_speedup": 1.77, "max_speedup": 3.23, "max_shape": (1, 1, 4)}


def shape_name(shape):
    return "x".join({1: "W", 2: "2W", 4: "4W"}[s] for s in shape)


def run_families(pm):
    table = {}
    for shape in SHAPES:
        o = [pm.estimate(ours(), s[0], s[1], s[2]).tflops
             for s in ((w * shape[0], w * shape[1], w * shape[2])
                       for w in SIZES)]
        c = [pm.estimate(cublas_like(), s[0], s[1], s[2],
                         baseline_quirks=True).tflops
             for s in ((w * shape[0], w * shape[1], w * shape[2])
                       for w in SIZES)]
        table[shape] = (o, c)
    return table


def summarize(table, title):
    rows = []
    speedups = []
    best = (0.0, None, None)
    for shape, (o, c) in table.items():
        avg, peak, peak_w = speedup_stats(o, c, SIZES)
        speedups.append(avg)
        if peak > best[0]:
            best = (peak, shape, peak_w)
        rows.append((shape_name(shape), round(max(o), 1), round(max(c), 1),
                     round(avg, 2), round(peak, 2), peak_w))
    print()
    print(format_table(
        ["shape", "ours max", "cuBLAS max", "avg speedup", "max speedup",
         "at W"], rows, title=title))
    overall_avg = sum(speedups) / len(speedups)
    print(f"overall avg speedup {overall_avg:.2f}; "
          f"best {best[0]:.2f}x on {shape_name(best[1])} at W={best[2]}")
    return overall_avg, best


def test_fig8_rect_rtx2070(benchmark, pm2070):
    table = benchmark(run_families, pm2070)
    overall_avg, best = summarize(
        table, "Fig. 8: rectangular HGEMM on RTX 2070")

    # Shape claims: ours wins on average in every family ("the trend is
    # similar to the square case"), and the biggest gains come at large W
    # where the baseline degrades.  Which family wins the max differs from
    # the paper (all our families tie near the n >= 12032 cliff; the paper
    # saw [W,W,4W] -- recorded in EXPERIMENTS.md).
    for shape, (o, c) in table.items():
        avg, peak, _ = speedup_stats(o, c, SIZES)
        assert avg > 1.0, f"ours must win family {shape}"
        assert peak >= 1.8, f"large-W gain missing in family {shape}"
    assert 1.4 <= overall_avg <= 2.1      # paper 1.77
    assert best[2] >= 12288                # max speedup lands at large W
    assert 2.0 <= best[0] <= 3.5           # paper 3.23
