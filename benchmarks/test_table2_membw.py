"""Table II -- measured DRAM and L2 bandwidth plus tensor peak.

Paper values (GB/s): RTX2070 DRAM 380 (of 448 peak), L2 750;
T4 DRAM 238 (of 320 peak), L2 910.  Tensor peaks 59.7 / 65 TFLOPS.
"""

import pytest

from repro.arch import RTX2070, T4
from repro.bench import measure_dram_bandwidth, measure_l2_bandwidth
from repro.report import format_table

PAPER = {
    "RTX2070": {"dram_peak": 448, "dram": 380, "l2": 750, "tensor": 59.7},
    "T4": {"dram_peak": 320, "dram": 238, "l2": 910, "tensor": 65.0},
}


def test_table2_bandwidths(benchmark):
    dram = {spec.name: None for spec in (RTX2070, T4)}
    l2 = dict(dram)
    dram["RTX2070"] = benchmark(measure_dram_bandwidth, RTX2070)
    dram["T4"] = measure_dram_bandwidth(T4)
    l2["RTX2070"] = measure_l2_bandwidth(RTX2070)
    l2["T4"] = measure_l2_bandwidth(T4)

    rows = []
    for spec in (RTX2070, T4):
        p = PAPER[spec.name]
        rows.append((spec.name, p["dram_peak"], p["dram"],
                     round(dram[spec.name].gbps, 1), p["l2"],
                     round(l2[spec.name].gbps, 1),
                     p["tensor"], round(spec.tensor_peak_tflops, 1)))
    print()
    print(format_table(
        ["device", "DRAM peak", "DRAM paper", "DRAM meas",
         "L2 paper", "L2 meas", "TC paper", "TC struct"],
        rows, title="Table II: DRAM / L2 bandwidth and Tensor Core peak"))

    for spec in (RTX2070, T4):
        p = PAPER[spec.name]
        assert dram[spec.name].gbps == pytest.approx(p["dram"], rel=0.03)
        assert l2[spec.name].gbps == pytest.approx(p["l2"], rel=0.05)
        assert spec.tensor_peak_tflops == pytest.approx(p["tensor"], rel=0.01)
