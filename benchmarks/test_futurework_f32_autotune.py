"""The paper's Section VIII future-work items, implemented and measured.

1. FP32 accumulators (``HMMA.1688.F32``): correctness + predicted
   performance of the `ours_f32` kernel.
2. The autotuner ("automatic tools to simplify programming"): recovers a
   kernel within a few percent of the best hand-analysis pick, and
   documents every rejection.
(The third item, the L2-friendly launch order, has its own ablation in
``test_ablation_launch_order.py``.)
"""

import numpy as np

from repro.analysis import autotune
from repro.arch import RTX2070
from repro.core import hgemm, hgemm_reference, ours, ours_f32
from repro.report import format_table

W = 8192


def test_futurework_f32_accumulators(benchmark, pm2070):
    rng = np.random.default_rng(0)
    a = rng.uniform(0, 1, (128, 512)).astype(np.float16)
    b = rng.uniform(0, 1, (512, 128)).astype(np.float16)

    c32 = benchmark(hgemm, a, b, "ours", RTX2070, "f32")
    assert c32.dtype == np.float32
    np.testing.assert_array_equal(c32, hgemm_reference(a, b, accumulate="f32"))

    exact = a.astype(np.float64) @ b.astype(np.float64)
    err16 = np.abs(hgemm(a, b).astype(np.float64) - exact).max()
    err32 = np.abs(c32.astype(np.float64) - exact).max()

    est16 = pm2070.estimate(ours(), W, W, W)
    est32 = pm2070.estimate(ours_f32(), W, W, W)
    print()
    print(format_table(
        ["kernel", "accumulator", "max err (k=512)", f"TFLOPS @ {W}"],
        [("ours", "FP16", f"{err16:.4f}", round(est16.tflops, 1)),
         ("ours-f32", "FP32", f"{err32:.6f}", round(est32.tflops, 1))],
        title="Future work: FP32 accumulators"))

    # FP32 accumulation is dramatically more accurate...
    assert err32 < err16 / 50
    # ...and costs throughput (smaller warp tile, more fragment traffic).
    assert est32.tflops < est16.tflops


def test_futurework_autotuner(benchmark, pm2070):
    result = benchmark(autotune, RTX2070, W, W, W, False, 6, pm2070)
    print()
    print(result.summary())

    paper_estimate = pm2070.estimate(ours(), W, W, W)
    # The tuner's pick is at least as good as the paper's hand choice...
    assert result.best_tflops >= paper_estimate.tflops * 0.999
    # ...stays in the paper's design family (big tiles, 128x64 warps)...
    assert result.best.b_m == 256 and result.best.warp_tile == (128, 64, 8)
    # ...and records the register-infeasible corner the paper argues about.
    assert any("register" in c.rejected for c in result.candidates)
