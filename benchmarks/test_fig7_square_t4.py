"""Fig. 7 -- ours vs cuBLAS HGEMM on square matrices, T4.

Paper: ours reaches 49.71 TFLOPS (76% of the 65-TFLOPS peak -- DRAM
bound); cuBLAS peaks at 45.43 at W = 2560 and declines; max speedup 1.7x
at W = 13312; average 1.53x; ours starts to fall past W = 12800; no sharp
cuBLAS cliff on this device.
"""

from conftest import SWEEP_SIZES, speedup_stats

from repro.core import cublas_like, ours
from repro.report import ascii_chart, format_comparison, format_series

PAPER = {
    "ours_max": 49.71, "cublas_max": 45.43, "cublas_max_at": 2560,
    "max_speedup": 1.7, "max_speedup_at": 13312, "avg_speedup": 1.53,
    "device_peak": 65.0,
}


def test_fig7_square_t4(benchmark, pm_t4):
    def sweep():
        o = [pm_t4.estimate(ours(), w, w, w).tflops for w in SWEEP_SIZES]
        c = [pm_t4.estimate(cublas_like(), w, w, w,
                            baseline_quirks=True).tflops for w in SWEEP_SIZES]
        return o, c

    o, c = benchmark(sweep)
    avg, peak, peak_w = speedup_stats(o, c, SWEEP_SIZES)

    print()
    print(format_series(SWEEP_SIZES, {"ours": [round(v, 1) for v in o],
                                      "cuBLAS": [round(v, 1) for v in c]}))
    print(ascii_chart(SWEEP_SIZES, {"ours": o, "cuBLAS": c}))
    print()
    print(format_comparison("ours max TFLOPS", PAPER["ours_max"], max(o)))
    print(format_comparison("cuBLAS max TFLOPS", PAPER["cublas_max"], max(c)))
    print(format_comparison("avg speedup", PAPER["avg_speedup"], avg))
    print(format_comparison("max speedup", PAPER["max_speedup"], peak))

    # --- shape assertions ---
    # Ours never reaches the T4's 65-TFLOPS peak: DRAM binds (Section VII).
    assert max(o) < 0.95 * PAPER["device_peak"]
    # Large sizes sit near the paper's ~50-TFLOPS DRAM plateau.
    large_ours = [v for w, v in zip(SWEEP_SIZES, o) if w >= 12288]
    assert all(40 <= v <= 55 for v in large_ours)
    # cuBLAS declines with size but shows NO sharp cliff: adjacent steps
    # never lose more than 25%.
    for prev, nxt in zip(c, c[1:]):
        assert nxt > 0.75 * prev
    # Who wins and by how much (paper avg 1.53, max 1.7).
    assert 1.35 <= avg <= 1.95
    assert 1.5 <= peak <= 2.2
    # T4's large-size throughput is below the RTX 2070's despite the higher
    # peak -- the paper's central DRAM-bandwidth argument -- checked in
    # test_fig6/test_fig7 EXPERIMENTS summary.
