"""Table V -- shared-memory throughput in bytes/cycle.

Paper values: LDS 60.66 / 64.00 / 64.00 and STS 31.53 / 42.67 / 51.20 for
widths 32 / 64 / 128.
"""

import pytest

from repro.arch import RTX2070
from repro.bench import (
    measure_lds_cpi,
    measure_sts_cpi,
    smem_throughput_bytes_per_cycle,
)
from repro.report import format_table

PAPER = {
    ("LDS", 32): 60.66, ("LDS", 64): 64.00, ("LDS", 128): 64.00,
    ("STS", 32): 31.53, ("STS", 64): 42.67, ("STS", 128): 51.20,
}


def test_table5_smem_throughput(benchmark):
    measured = {}
    for width in (32, 64, 128):
        lds = (benchmark(measure_lds_cpi, RTX2070, width) if width == 64
               else measure_lds_cpi(RTX2070, width))
        sts = measure_sts_cpi(RTX2070, width)
        measured[("LDS", width)] = smem_throughput_bytes_per_cycle(lds, width)
        measured[("STS", width)] = smem_throughput_bytes_per_cycle(sts, width)

    rows = []
    for op in ("LDS", "STS"):
        row = [op]
        for width in (32, 64, 128):
            row.append(f"{PAPER[(op, width)]:.2f} / {measured[(op, width)]:.2f}")
        rows.append(tuple(row))
    print()
    print(format_table(
        ["Type", "32 (paper/meas)", "64 (paper/meas)", "128 (paper/meas)"],
        rows, title="Table V: shared memory throughput (bytes/cycle)"))

    for key, paper in PAPER.items():
        assert measured[key] == pytest.approx(paper, rel=0.03)

    # The paper's headline readings:
    # LDS.64/.128 reach the 64 B/cycle theoretical peak...
    assert measured[("LDS", 64)] == pytest.approx(64.0, rel=0.01)
    assert measured[("LDS", 128)] == pytest.approx(64.0, rel=0.01)
    # ...and narrow STS pays a heavy penalty: .128 is 20% over .64 and
    # 62.4% over .32.
    assert measured[("STS", 128)] / measured[("STS", 64)] == pytest.approx(
        1.20, abs=0.02)
    assert measured[("STS", 128)] / measured[("STS", 32)] == pytest.approx(
        1.624, abs=0.03)
