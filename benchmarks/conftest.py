"""Shared fixtures for the table/figure regeneration benchmarks.

Performance models cache their SM timing profiles, and several figures
share kernel configurations, so models live in session scope: the costly
cycle-level simulations run once per (device, config) for the whole
benchmark session.  Each model fixture pre-warms both paper kernels'
profiles across two worker processes; the results land in the shared
on-disk cache (see ``repro.perf.cache``), so later sessions skip the
simulations entirely.
"""

import pytest

from repro.analysis import PerformanceModel
from repro.arch import RTX2070, T4
from repro.core import cublas_like, ours

#: The square sweep of the paper's evaluation (Section VII): 1024..16384,
#: step 256.  Benchmarks may subsample for speed; figures print what they
#: used.
PAPER_SIZES = list(range(1024, 16385, 256))

#: Coarser sweep used by default (every 1024) -- same span, 16 points.
SWEEP_SIZES = list(range(1024, 16385, 1024)) + [16128]


def _prewarmed_model(spec) -> PerformanceModel:
    pm = PerformanceModel(spec)
    pm.profile_many([ours(), cublas_like()], max_workers=2)
    return pm


@pytest.fixture(scope="session")
def pm2070():
    return _prewarmed_model(RTX2070)


@pytest.fixture(scope="session")
def pm_t4():
    return _prewarmed_model(T4)


def speedup_stats(ours_series, base_series, sizes):
    """(average speedup, max speedup, argmax size) of two TFLOPS series."""
    speedups = [o / b for o, b in zip(ours_series, base_series)]
    best = max(range(len(speedups)), key=lambda i: speedups[i])
    return (sum(speedups) / len(speedups), speedups[best], sizes[best])
