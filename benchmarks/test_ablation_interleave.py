"""Ablation -- STS interleave depth swept from 1 to 8 HMMAs.

Extends Fig. 4 beyond the paper's two points: Eq. (6) predicts saturation
at 5 HMMAs per STS.128; deeper interleaves should add nothing, shallower
ones throttle.
"""

from repro.arch import RTX2070
from repro.core import ours
from repro.core.blocking import min_hmma_between_sts
from repro.report import format_table

W = 8192
DEPTHS = (1, 2, 3, 5, 8)


def test_ablation_sts_interleave_sweep(benchmark, pm2070):
    def sweep():
        return {d: pm2070.estimate(ours(sts_interleave=d), W, W, W).tflops
                for d in DEPTHS}

    tflops = benchmark(sweep)
    eq6 = min_hmma_between_sts(RTX2070)

    rows = [(d, round(tflops[d], 2),
             "<- Eq.(6) minimum" if d == eq6 else "") for d in DEPTHS]
    print()
    print(format_table(["STS interleave", "TFLOPS", ""], rows,
                       title=f"Ablation: STS.128 interleave depth (W={W})"))

    # Monotone non-decreasing up to the Eq. (6) point...
    assert tflops[1] <= tflops[2] <= tflops[3] <= tflops[5]
    # ...and saturated beyond it (deeper spacing buys < 2%).
    assert abs(tflops[8] - tflops[5]) / tflops[5] < 0.02
    # The paper's two points keep their order.
    assert tflops[5] > tflops[2]
