"""Figs. 1 and 2 -- register fragment layouts of the 8x8 matrix and the
HMMA.1688 operands.

Fig. 1: row-major order stores lane 4r+p's two halves at (r, 2p), (r, 2p+1);
column-major stores lane q+4c's halves at (2q, c), (2q+1, c).
Fig. 2: D, A, C are 16x8 row-major register pairs; B is one column-major
register.  The layouts are *executable* here: scatter + HMMA + gather must
equal the matrix product.
"""

import numpy as np

from repro.hmma import (
    COL_MAJOR,
    ROW_MAJOR,
    fragments_to_matrix16x8,
    hmma_operand_layouts,
    lane_map,
    matrix16x8_to_fragments,
    matrix_to_fragment,
    mma,
)


def test_fig1_lane_maps(benchmark):
    row = benchmark(lane_map, ROW_MAJOR)
    col = lane_map(COL_MAJOR)

    print("\nFig. 1 (left) -- row-major lane ownership of an 8x8 matrix:")
    print(row.render())
    print("\nFig. 1 (right) -- column-major lane ownership:")
    print(col.render())

    # The paper's exact grids.
    assert row.render().splitlines()[0].split() == ["0", "1", "2", "3"]
    assert row.render().splitlines()[-1].split() == ["28", "29", "30", "31"]
    assert col.render().splitlines()[0].split() == \
        ["0", "4", "8", "12", "16", "20", "24", "28"]
    assert col.render().splitlines()[-1].split() == \
        ["3", "7", "11", "15", "19", "23", "27", "31"]


def test_fig2_operand_layouts_execute(benchmark):
    layouts = hmma_operand_layouts()
    print("\nFig. 2 -- HMMA.1688 operand layouts:")
    for name, (shape, order, regs) in layouts.items():
        print(f"  {name}: {shape[0]}x{shape[1]}, {order}-major, "
              f"{regs} warp register(s)")

    assert layouts["B"][1] == COL_MAJOR
    assert all(layouts[k][1] == ROW_MAJOR for k in ("D", "A", "C"))

    # Executable proof: scatter by Fig. 2, run HMMA, gather, compare.
    rng = np.random.default_rng(0)
    a = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
    b = rng.uniform(-1, 1, (8, 8)).astype(np.float16)
    c = rng.uniform(-1, 1, (16, 8)).astype(np.float16)

    def run():
        d_regs = mma.hmma_1688_f16(
            matrix16x8_to_fragments(a),
            matrix_to_fragment(b, COL_MAJOR),
            matrix16x8_to_fragments(c),
        )
        return fragments_to_matrix16x8(d_regs)

    got = benchmark(run)
    expected = (a.astype(np.float32) @ b.astype(np.float32)
                + c.astype(np.float32)).astype(np.float16)
    np.testing.assert_array_equal(got, expected)
