"""Functional-simulator speed benchmark: the engine ladder, digest-checked.

Runs one full-grid HGEMM (512x512x64, both matrices random fp16) through
the functional simulator four ways:

* **reference** -- the seed instruction-at-a-time interpreter
  (``REPRO_FUNC_ENGINE=reference`` path), the baseline;
* **predecoded** -- the decoded-op engine with window-scheduled batched
  fast paths, serial, one warp at a time;
* **lockstep** -- the warp-lockstep engine (the default): all warps of a
  CTA execute each decoded slot as one stacked NumPy operation;
* **parallel** -- the lockstep engine with CTAs sharded over one worker
  process per CPU (``max_workers=0``).

All legs must produce bit-identical C matrices and identical
retired-opcode counts -- the throughput layer's core invariant.  The
predecoded leg must beat the reference interpreter by at least 3x and the
lockstep leg must beat predecoded by at least 1.5x end-to-end.  Results go
to ``BENCH_funcspeed.json`` in the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_funcspeed.py
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path

#: Full-grid problem: 8 CTAs of the cublas-like kernel, big enough that
#: simulation (not program building) dominates the wall time.
M, N, K = 512, 512, 64
KERNEL = "cublas"


def _run_leg(a, b, engine, max_workers):
    import numpy as np

    from repro.core import hgemm

    # hgemm() builds its own FunctionalSimulator; steer the engine choice
    # through the environment knob the rest of the stack uses.
    os.environ["REPRO_FUNC_ENGINE"] = engine
    try:
        start = time.perf_counter()
        run = hgemm(a, b, kernel=KERNEL, return_run=True,
                    max_workers=max_workers)
        elapsed = time.perf_counter() - start
    finally:
        os.environ.pop("REPRO_FUNC_ENGINE", None)
    digest = hashlib.sha256(
        np.ascontiguousarray(run.c).tobytes()).hexdigest()
    return elapsed, digest, run.stats


def main() -> int:
    import numpy as np

    rng = np.random.default_rng(7)
    a = rng.uniform(-2, 2, (M, K)).astype(np.float16)
    b = rng.uniform(-2, 2, (K, N)).astype(np.float16)

    ref_s, ref_digest, ref_stats = _run_leg(a, b, "reference", None)
    pre_s, pre_digest, pre_stats = _run_leg(a, b, "predecoded", None)
    lock_s, lock_digest, lock_stats = _run_leg(a, b, "lockstep", None)
    par_s, par_digest, par_stats = _run_leg(a, b, "lockstep", 0)

    ok = (ref_digest == pre_digest == lock_digest == par_digest
          and ref_stats.opcode_counts == pre_stats.opcode_counts
          == lock_stats.opcode_counts == par_stats.opcode_counts)
    if not ok:
        print("FAIL: engine legs disagree (digest or opcode counts)",
              file=sys.stderr)
        return 1

    payload = {
        "problem": f"{M}x{N}x{K}",
        "kernel": KERNEL,
        "ctas": ref_stats.ctas_run,
        "instructions_retired": ref_stats.instructions_retired,
        "digest_sha256": ref_digest,
        "reference_seconds": round(ref_s, 4),
        "predecoded_seconds": round(pre_s, 4),
        "lockstep_seconds": round(lock_s, 4),
        "parallel_seconds": round(par_s, 4),
        "predecoded_speedup": round(ref_s / pre_s, 2) if pre_s else None,
        "lockstep_speedup": round(ref_s / lock_s, 2) if lock_s else None,
        "lockstep_over_predecoded": round(pre_s / lock_s, 2) if lock_s else None,
        "parallel_speedup": round(ref_s / par_s, 2) if par_s else None,
        "bit_identical": ok,
    }

    out = Path(__file__).resolve().parent.parent / "BENCH_funcspeed.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    best = max(payload["predecoded_speedup"] or 0.0,
               payload["lockstep_speedup"] or 0.0,
               payload["parallel_speedup"] or 0.0)
    if best < 3.0:
        print(f"FAIL: best speedup {best:.2f}x < 3x target", file=sys.stderr)
        return 1
    if (payload["lockstep_over_predecoded"] or 0.0) < 1.5:
        print(f"FAIL: lockstep only {payload['lockstep_over_predecoded']}x "
              "over predecoded (< 1.5x target)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
