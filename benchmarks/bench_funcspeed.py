"""Functional-simulator speed benchmark: the engine ladder, digest-checked.

Runs one full-grid HGEMM (512x512x64 -- the 16-CTA 512^2 problem, cublas
tiling) through the functional simulator five ways:

* **reference** -- the seed instruction-at-a-time interpreter
  (``REPRO_FUNC_ENGINE=reference`` path), the baseline;
* **predecoded** -- the decoded-op engine with window-scheduled batched
  fast paths, serial, one warp at a time;
* **lockstep** -- the warp-lockstep engine: all warps of a CTA execute
  each decoded slot as one stacked NumPy operation, CTAs serial;
* **parallel** -- the lockstep engine with CTAs sharded over one worker
  process per CPU (``max_workers=0``), the incumbent way to spend more
  silicon on one grid;
* **gridlock** -- the grid-lockstep engine: the whole grid stacked into
  one process-local state, every decoded slot one NumPy op.

Each leg re-seeds its own RNG (identical inputs no matter how legs are
added or reordered), builds its own program, and runs ``reps`` times on
fresh memory images: ``cold`` is the first run (decode included), ``warm``
the best of the rest (decode served by the cross-run predecode cache --
the paper's figure sweeps replay one kernel many times, so warm is the
steady state that matters).  All legs must produce bit-identical C
matrices and identical retired-opcode counts -- the throughput layer's
core invariant.

Gates: the decoded engines must beat the reference interpreter by at
least 3x, lockstep must beat predecoded by at least 1.5x, and gridlock
must beat warp-lockstep by at least 2x on the warm 16-CTA run -- one
grid-wide NumPy call per decoded slot amortises per-call overhead that
warp-lockstep pays once per CTA.  The ratio against the CTA-sharded
multiprocessing path (the mode gridlock replaces for grids this size,
where fork + pickle + per-worker decode swallow the parallel gain) is
recorded alongside.  Results go to ``BENCH_funcspeed.json``.

A cross-generation leg re-runs the same problem on a non-Turing device
(``XGEN_DEVICE``, Ampere's HMMA.16816 pipeline): lockstep and gridlock
must match the precision-model oracle digest bit-for-bit and gridlock
must hold >= 1.5x over warp-lockstep there too, so the engine ladder's
gates cover more than the paper's native generation.

Usage::

    PYTHONPATH=src python benchmarks/bench_funcspeed.py
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path

#: Full-grid problem: the paper's canonical 512^3 HGEMM -- 16 CTAs of the
#: cublas-like kernel, big enough that simulation dominates the wall time.
M, N, K = 512, 512, 512
KERNEL = "cublas"

#: Non-Turing device of the cross-generation leg (HMMA.16816 pipeline).
XGEN_DEVICE = "A100"


def _run_leg(engine, max_workers, reps, device="RTX2070"):
    """Time one engine: build inputs + program from a fresh seed, run
    ``reps`` times on fresh memory.  Returns (cold, warm, digest, stats)."""
    import numpy as np

    from repro.arch.turing import get_device
    from repro.core.hgemm import HgemmProblem, _resolve_config, build_hgemm
    from repro.sim.functional import FunctionalSimulator
    from repro.sim.memory import GlobalMemory

    # Per-leg seeding: every leg regenerates identical inputs, so adding or
    # reordering legs can never silently change what an engine computes.
    rng = np.random.default_rng(7)
    a16 = rng.uniform(-2, 2, (M, K)).astype(np.float16)
    b16 = rng.uniform(-2, 2, (K, N)).astype(np.float16)

    spec = get_device(device)
    config = _resolve_config(KERNEL, M, N, K, "f16", spec)

    def aligned(nbytes):
        return (nbytes + 255) // 256 * 256

    a_addr = 0
    b_addr = aligned(a16.nbytes)
    c_addr = b_addr + aligned(b16.nbytes)
    total = c_addr + aligned(2 * M * N) + 256
    problem = HgemmProblem(m=M, n=N, k=K, a_addr=a_addr, b_addr=b_addr,
                           c_addr=c_addr, alpha=1.0, beta=0.0)
    program = build_hgemm(config, problem, spec)
    bt = np.ascontiguousarray(b16.T)

    os.environ["REPRO_FUNC_ENGINE"] = engine
    try:
        times = []
        for _ in range(reps):
            memory = GlobalMemory(total)
            memory.write_array(a_addr, a16)
            memory.write_array(b_addr, bt)
            start = time.perf_counter()
            stats = FunctionalSimulator().run(
                program, memory, grid_dim=config.grid_dim(M, N),
                max_workers=max_workers)
            times.append(time.perf_counter() - start)
    finally:
        os.environ.pop("REPRO_FUNC_ENGINE", None)
    c = memory.read_array(c_addr, np.float16, M * N)
    digest = hashlib.sha256(np.ascontiguousarray(c).tobytes()).hexdigest()
    cold = times[0]
    warm = min(times[1:]) if len(times) > 1 else times[0]
    return cold, warm, digest, stats


def _oracle_digest(device):
    """Digest of the precision-model oracle result for *device*'s resolved
    config -- correctness anchor for legs that skip the slow reference
    interpreter."""
    import numpy as np

    from repro.arch.turing import get_device
    from repro.core import hgemm_reference
    from repro.core.hgemm import _resolve_config

    rng = np.random.default_rng(7)
    a16 = rng.uniform(-2, 2, (M, K)).astype(np.float16)
    b16 = rng.uniform(-2, 2, (K, N)).astype(np.float16)
    config = _resolve_config(KERNEL, M, N, K, "f16", get_device(device))
    want = hgemm_reference(a16, b16, w_k=config.w_k)
    return hashlib.sha256(np.ascontiguousarray(want).tobytes()).hexdigest()


def main() -> int:
    legs = {
        "reference": _run_leg("reference", None, 1),
        "predecoded": _run_leg("predecoded", None, 2),
        "lockstep": _run_leg("lockstep", None, 4),
        "parallel": _run_leg("lockstep", 0, 3),
        "gridlock": _run_leg("gridlock", None, 4),
    }

    ref = legs["reference"]
    ok = all(leg[2] == ref[2] and leg[3].opcode_counts == ref[3].opcode_counts
             for leg in legs.values())
    if not ok:
        print("FAIL: engine legs disagree (digest or opcode counts)",
              file=sys.stderr)
        return 1

    # Cross-generation leg: the same problem on a non-Turing device (the
    # Ampere HMMA.16816 pipeline).  Too slow for the reference interpreter
    # twice over, so the correctness anchor is the precision-model oracle
    # digest; lockstep and gridlock must match it and each other.
    xgen = {
        "lockstep": _run_leg("lockstep", None, 3, device=XGEN_DEVICE),
        "gridlock": _run_leg("gridlock", None, 3, device=XGEN_DEVICE),
    }
    xgen_want = _oracle_digest(XGEN_DEVICE)
    xgen_ok = all(leg[2] == xgen_want for leg in xgen.values()) and (
        xgen["lockstep"][3].opcode_counts == xgen["gridlock"][3].opcode_counts)
    if not xgen_ok:
        print(f"FAIL: {XGEN_DEVICE} legs disagree with the oracle digest",
              file=sys.stderr)
        return 1

    cold = {name: leg[0] for name, leg in legs.items()}
    warm = {name: leg[1] for name, leg in legs.items()}
    payload = {
        "problem": f"{M}x{N}x{K}",
        "kernel": KERNEL,
        "ctas": ref[3].ctas_run,
        "instructions_retired": ref[3].instructions_retired,
        "digest_sha256": ref[2],
        "cold_seconds": {k: round(v, 4) for k, v in cold.items()},
        "warm_seconds": {k: round(v, 4) for k, v in warm.items()},
        "predecoded_speedup": round(cold["reference"] / cold["predecoded"], 2),
        "lockstep_speedup": round(cold["reference"] / cold["lockstep"], 2),
        "lockstep_over_predecoded": round(
            cold["predecoded"] / cold["lockstep"], 2),
        "parallel_speedup": round(cold["reference"] / cold["parallel"], 2),
        "gridlock_speedup": round(cold["reference"] / cold["gridlock"], 2),
        "gridlock_over_lockstep": round(
            warm["lockstep"] / warm["gridlock"], 2),
        "gridlock_over_sharded_lockstep": round(
            warm["parallel"] / warm["gridlock"], 2),
        "bit_identical": ok,
        "xgen_device": XGEN_DEVICE,
        "xgen_digest_sha256": xgen_want,
        "xgen_warm_seconds": {k: round(v[1], 4) for k, v in xgen.items()},
        "xgen_gridlock_over_lockstep": round(
            xgen["lockstep"][1] / xgen["gridlock"][1], 2),
        "xgen_bit_identical": xgen_ok,
    }

    out = Path(__file__).resolve().parent.parent / "BENCH_funcspeed.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    best = max(payload["predecoded_speedup"], payload["lockstep_speedup"],
               payload["parallel_speedup"], payload["gridlock_speedup"])
    if best < 3.0:
        print(f"FAIL: best speedup {best:.2f}x < 3x target", file=sys.stderr)
        return 1
    if payload["lockstep_over_predecoded"] < 1.5:
        print(f"FAIL: lockstep only {payload['lockstep_over_predecoded']}x "
              "over predecoded (< 1.5x target)", file=sys.stderr)
        return 1
    if payload["gridlock_over_lockstep"] < 2.0:
        print(f"FAIL: gridlock only {payload['gridlock_over_lockstep']}x "
              "over warp-lockstep (< 2x target)", file=sys.stderr)
        return 1
    if payload["xgen_gridlock_over_lockstep"] < 1.5:
        print(f"FAIL: {XGEN_DEVICE} gridlock only "
              f"{payload['xgen_gridlock_over_lockstep']}x over warp-lockstep "
              "(< 1.5x target)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
