"""Ablation -- data prefetching (software pipelining), Section VI-B.

With prefetching, the next tile's LDGs interleave into the current
iteration's HMMA stream (the paper's ">= 768 cycles to hide the LDG
latency"); without it, every iteration exposes the full global-memory
round trip between the tile barriers.
"""

from repro.core import ours
from repro.report import format_table

SIZES = (4096, 8192, 16384)


def test_ablation_prefetch(benchmark, pm2070):
    on = ours()
    off = ours(prefetch=False)

    def sweep():
        return (
            [pm2070.estimate(on, w, w, w).tflops for w in SIZES],
            [pm2070.estimate(off, w, w, w).tflops for w in SIZES],
        )

    with_pf, without_pf = benchmark(sweep)

    rows = [(w, round(a, 1), round(b, 1), round(a / b, 2))
            for w, a, b in zip(SIZES, with_pf, without_pf)]
    print()
    print(format_table(["W", "prefetch", "no prefetch", "speedup"], rows,
                       title="Ablation: data prefetching (Section VI-B)"))

    for a, b in zip(with_pf, without_pf):
        assert a > b
    # Exposing a ~300-cycle DRAM latency per 4400-cycle iteration costs
    # on the order of 10-25%.
    speedups = [a / b for a, b in zip(with_pf, without_pf)]
    assert all(1.05 <= s <= 1.4 for s in speedups)

    # The paper's latency-hiding margin: the LDG latency fits comfortably
    # within one iteration's compute window.
    profile = pm2070.sm_profile(on)
    from repro.arch import RTX2070
    assert profile.marginal_cycles > 2 * RTX2070.ldg_latency_cycles
