"""Fig. 6 -- ours vs cuBLAS HGEMM on square matrices, RTX 2070.

Paper: ours rises to the device peak (60.37 TFLOPS max); cuBLAS peaks at
52.75 TFLOPS at W = 4096, declines slightly, and drops sharply at
W = 12032 (suspected L2-blocking failure).  Max speedup 2.7x at W = 16128;
average 1.55x.
"""

from conftest import SWEEP_SIZES, speedup_stats

from repro.core import cublas_like, ours
from repro.report import ascii_chart, format_comparison, format_series

PAPER = {
    "ours_max": 60.37, "cublas_max": 52.75, "cublas_max_at": 4096,
    "max_speedup": 2.7, "max_speedup_at": 16128, "avg_speedup": 1.55,
    "cliff_at": 12032, "device_peak": 59.7,
}


def test_fig6_square_rtx2070(benchmark, pm2070):
    def sweep():
        o = [pm2070.estimate(ours(), w, w, w).tflops for w in SWEEP_SIZES]
        c = [pm2070.estimate(cublas_like(), w, w, w,
                             baseline_quirks=True).tflops for w in SWEEP_SIZES]
        return o, c

    o, c = benchmark(sweep)
    avg, peak, peak_w = speedup_stats(o, c, SWEEP_SIZES)

    print()
    print(format_series(SWEEP_SIZES, {"ours": [round(v, 1) for v in o],
                                      "cuBLAS": [round(v, 1) for v in c]}))
    print(ascii_chart(SWEEP_SIZES, {"ours": o, "cuBLAS": c}))
    print()
    print(format_comparison("ours max TFLOPS", PAPER["ours_max"], max(o)))
    print(format_comparison("cuBLAS max TFLOPS", PAPER["cublas_max"], max(c)))
    print(format_comparison("avg speedup", PAPER["avg_speedup"], avg))
    print(format_comparison("max speedup", PAPER["max_speedup"], peak))
    print(f"max speedup at W={peak_w} (paper {PAPER['max_speedup_at']})")

    # --- shape assertions ---
    # Small sizes: comparable / cuBLAS can win (launch + partial waves).
    assert o[0] < c[0] * 1.2
    # Ours grows toward (but not beyond ~5% of) the device peak.
    assert max(o) <= PAPER["device_peak"] * 1.05
    assert max(o) >= 0.85 * PAPER["device_peak"]
    # cuBLAS peaks in the low-to-mid range, then degrades.
    cub_peak_w = SWEEP_SIZES[c.index(max(c))]
    assert cub_peak_w <= 8192
    # The W >= 12032 cliff: large-size cuBLAS falls well below its peak.
    big = [v for w, v in zip(SWEEP_SIZES, c) if w >= PAPER["cliff_at"]]
    assert max(big) < 0.6 * max(c)
    # Who wins and by how much.
    assert 1.35 <= avg <= 1.75           # paper 1.55
    assert 1.9 <= peak <= 2.9            # paper 2.7
    assert peak_w >= 12032
