"""Service-coalescing benchmark: N duplicate sweeps, one simulation.

The scenario the serve daemon exists for: ``CLIENTS`` tenants ask for the
same figure sweep at the same time.  Without the service each pays the
full simulation cost; with it, the first submission executes and the
other ``CLIENTS - 1`` coalesce onto its in-flight future.

Two measured legs, written to ``BENCH_servespeed.json`` in the repo root:

**Uncoalesced leg** -- ``CLIENTS`` sequential in-process sweep runs with
caching disabled (``REPRO_NO_CACHE=1``) and a fresh model per run: what
``CLIENTS`` independent cold processes would cost in total.

**Serve leg** -- one in-process :class:`repro.serve.ServeDaemon` (2
workers) on a scratch socket, ``CLIENTS`` concurrent client threads each
submitting the identical sweep job and waiting.  Gates:

* ``serve.coalesced`` >= ``CLIENTS - 1`` (every twin attached to the one
  in-flight execution -- none re-simulated, none raced past it);
* exactly one job executed;
* all ``CLIENTS`` results bit-identical to each other **and** to the
  in-process reference run (coalescing must be invisible in the data);
* wall-clock speedup >= ``SERVE_SPEEDUP_TARGET``.

Runs against a throwaway cache directory, never the user's real one.

Usage::

    PYTHONPATH=src python benchmarks/bench_servespeed.py
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

#: Concurrent duplicate tenants on the serve leg (and sequential cold
#: runs on the uncoalesced leg).
CLIENTS = 8

#: Required wall-clock speedup of the serve leg over the uncoalesced one.
#: Perfect coalescing approaches CLIENTSx; 3x leaves room for protocol
#: and scheduling overhead on a loaded box.
SERVE_SPEEDUP_TARGET = 3.0

#: Square sizes of the duplicated sweep -- small, the cost is dominated
#: by the SM profile simulation every cold run must repeat.
SWEEP_SIZES = [2048, 4096]


def _sweep_payload(spec):
    from repro.core import ours
    from repro.serve.jobs import config_to_dict, spec_to_dict

    return {"spec": spec_to_dict(spec), "config": config_to_dict(ours()),
            "sizes": list(SWEEP_SIZES)}


def _inprocess_sweep(spec):
    """One cold in-process run; returns its result in serve-job form."""
    from dataclasses import asdict

    from repro.analysis import PerformanceModel
    from repro.core import ours

    pm = PerformanceModel(spec)
    estimates = pm.sweep(ours(), SWEEP_SIZES)
    # JSON round-trip so tuples/lists compare equal to daemon results.
    return json.loads(json.dumps(
        {"estimates": [asdict(e) for e in estimates]}))


def _uncoalesced_leg(spec):
    """CLIENTS sequential cold runs: total seconds + the last result."""
    start = time.perf_counter()
    result = None
    for _ in range(CLIENTS):
        result = _inprocess_sweep(spec)
    return time.perf_counter() - start, result


def _serve_leg(spec, socket_path):
    """CLIENTS concurrent duplicate submissions against one daemon."""
    from repro.serve import ServeClient, ServeDaemon

    payload = _sweep_payload(spec)
    daemon = ServeDaemon(socket_path, workers=2)
    daemon.start()
    try:
        views = [None] * CLIENTS
        errors = []

        def submit(slot):
            try:
                with ServeClient(socket_path, tenant=f"bench-{slot}") as c:
                    views[slot] = c.run("sweep", payload)
            except Exception as exc:  # noqa: BLE001 - report, not hang
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(CLIENTS)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        wall = time.perf_counter() - start
        stats = daemon._stats()
    finally:
        daemon.stop()
    if errors:
        raise RuntimeError(f"serve leg client failure: {errors[0]}")
    if any(v is None for v in views):
        raise RuntimeError("serve leg: a client never finished")
    return wall, views, stats


def main() -> int:
    scratch = tempfile.mkdtemp(prefix="repro-bench-serve")
    saved = {k: os.environ.get(k) for k in ("REPRO_CACHE_DIR",
                                            "REPRO_NO_CACHE")}
    os.environ["REPRO_CACHE_DIR"] = scratch
    try:
        from repro.arch import RTX2070

        # Uncoalesced leg first, fully cache-disabled: every run pays the
        # whole simulation, exactly like CLIENTS unrelated cold processes.
        os.environ["REPRO_NO_CACHE"] = "1"
        print(f"uncoalesced leg: {CLIENTS} sequential cold sweeps...",
              file=sys.stderr)
        uncoalesced_s, reference = _uncoalesced_leg(RTX2070)

        # Serve leg with caches enabled (still the empty scratch dir, so
        # the daemon's one execution is as cold as each run above).
        del os.environ["REPRO_NO_CACHE"]
        print(f"serve leg: {CLIENTS} concurrent duplicate submissions...",
              file=sys.stderr)
        serve_s, views, stats = _serve_leg(
            RTX2070, os.path.join(scratch, "bench.sock"))
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(scratch, ignore_errors=True)

    identical = all(v["result"] == reference for v in views)
    speedup = uncoalesced_s / serve_s if serve_s else None
    payload = {
        "clients": CLIENTS,
        "sweep_sizes": SWEEP_SIZES,
        "uncoalesced_seconds": round(uncoalesced_s, 4),
        "serve_seconds": round(serve_s, 4),
        "serve_speedup": round(speedup, 2) if speedup else None,
        "serve_speedup_target": SERVE_SPEEDUP_TARGET,
        "executed": stats["executed"],
        "coalesced": stats["coalesced"],
        "cache_hits": stats["cache_hits"],
        "failed": stats["failed"],
        "results_identical": identical,
    }

    out = Path(__file__).resolve().parent.parent / "BENCH_servespeed.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    if not identical:
        print("FAIL: served results differ from the in-process reference",
              file=sys.stderr)
        return 1
    if stats["executed"] != 1:
        print(f"FAIL: {stats['executed']} executions for {CLIENTS} "
              "identical submissions (expected 1)", file=sys.stderr)
        return 1
    if stats["coalesced"] < CLIENTS - 1:
        print(f"FAIL: only {stats['coalesced']} of {CLIENTS - 1} twins "
              "coalesced", file=sys.stderr)
        return 1
    if (speedup or 0.0) < SERVE_SPEEDUP_TARGET:
        print(f"FAIL: serve leg only {speedup:.2f}x over uncoalesced "
              f"(< {SERVE_SPEEDUP_TARGET}x target)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
