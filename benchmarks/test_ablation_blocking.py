"""Ablation -- Table VI's blocking configurations run end-to-end.

Table VI is analytical (cycles per iteration); this ablation feeds the
same six configurations through the generated kernels + timing simulator +
wave model and checks the analysis' ordering survives contact with the
full pipeline: bigger CTA tiles win, and the warp tile matters most at
256x128.
"""

import pytest

from repro.core import KernelConfig
from repro.core.blocking import TABLE6_CONFIGS, pipe_cycles
from repro.arch import RTX2070
from repro.report import format_table

W = 8192


def make_config(cta, warp):
    return KernelConfig(b_m=cta[0], b_n=cta[1], b_k=cta[2],
                        w_m=warp[0], w_n=warp[1], w_k=warp[2],
                        smem_pad_halves=8, sts_interleave=5,
                        name=f"{cta[0]}x{cta[1]}-{warp[0]}x{warp[1]}")


def test_ablation_blocking_end_to_end(benchmark, pm2070, pm_t4):
    configs = {label: make_config(cta, warp)
               for (cta, warp) in TABLE6_CONFIGS
               for label in [f"{cta[0]}x{cta[1]}x{cta[2]} / {warp[0]}x{warp[1]}"]}

    def sweep():
        out = {}
        for label, cfg in configs.items():
            try:
                out[label] = pm2070.estimate(cfg, W, W, W).tflops
            except Exception:
                # (128x128x32)/(128x64): only 2 warps share the whole tile
                # load, needing ~288 registers/thread for LDG staging --
                # register-infeasible, consistent with the paper's
                # register-budget arguments (Section VI-A).
                out[label] = None
        return out

    tflops = benchmark(sweep)

    rows = []
    for (cta, warp) in TABLE6_CONFIGS:
        label = f"{cta[0]}x{cta[1]}x{cta[2]} / {warp[0]}x{warp[1]}"
        cycles = pipe_cycles(configs[label], RTX2070)
        value = tflops[label]
        rows.append((label, round(cycles.hmma), round(cycles.memory_io),
                     "compute" if cycles.compute_bound else "memory",
                     round(value, 1) if value else "infeasible (regs)"))
    print()
    print(format_table(
        ["blocking", "HMMA cyc", "memIO cyc", "Table VI bound", "TFLOPS"],
        rows, title=f"Ablation: Table VI blockings end-to-end (W={W})"))

    t = {k: v for k, v in tflops.items() if v is not None}
    # The paper's selection logic, confirmed end-to-end:
    # 1. Growing the CTA tile helps at fixed 64x64 warps.
    assert t["256x256x32 / 64x64"] > t["128x128x32 / 64x64"]
    # 2. The warp tile matters among feasible configs: 128x64 never loses
    #    to 64x64 on the same CTA tile.
    for cta in ("256x128x32", "256x256x32"):
        assert t[f"{cta} / 128x64"] >= t[f"{cta} / 64x64"] * 0.98
    # 3. Robustness -- the paper's actual reason for 256x256 ("robust to
    #    L2 cache miss"): on the compute-bound RTX 2070 the 256x128 tile
    #    can edge ahead via double occupancy, but where DRAM binds (the
    #    T4) the 256x256 tile's higher intensity wins decisively.
    t4_256 = pm_t4.estimate(configs["256x256x32 / 128x64"], W, W, W)
    t4_128 = pm_t4.estimate(configs["256x128x32 / 128x64"], W, W, W)
    print(f"T4 @ {W}: 256x256 {t4_256.tflops:.1f} ({t4_256.bound}) vs "
          f"256x128 {t4_128.tflops:.1f} ({t4_128.bound})")
    assert t4_256.bound == "dram"
    assert t4_256.tflops > 1.1 * t4_128.tflops
