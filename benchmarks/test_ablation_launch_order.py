"""Ablation -- CTA launch order: row-major vs L2-friendly supertiles.

The paper's kernel uses the default row-major raster and defers "a deeper
look into the L2 cache-friendly thread block launch order" to future work
(Section VIII).  We implement that future work: a supertile raster keeps
each wave's window roughly square, shrinking its DRAM working set.  The
gain should appear exactly where the paper is DRAM-bound: ours on the T4.
"""

from repro.core import ours
from repro.report import format_table

SIZES = (8192, 12288, 16384)


def test_ablation_launch_order(benchmark, pm2070, pm_t4):
    row = ours()                                   # paper's kernel
    swz = ours(cta_order="supertile", supertile_width=8)

    def sweep():
        out = {}
        for name, pm in (("RTX2070", pm2070), ("T4", pm_t4)):
            out[name] = {
                "row": [pm.estimate(row, w, w, w) for w in SIZES],
                "supertile": [pm.estimate(swz, w, w, w) for w in SIZES],
            }
        return out

    results = benchmark(sweep)

    rows = []
    for device, series in results.items():
        for w, r_est, s_est in zip(SIZES, series["row"], series["supertile"]):
            rows.append((device, w, round(r_est.tflops, 1), r_est.bound,
                         round(s_est.tflops, 1), s_est.bound))
    print()
    print(format_table(
        ["device", "W", "row TFLOPS", "row bound", "supertile TFLOPS",
         "supertile bound"],
        rows, title="Ablation: CTA launch order (the paper's future work)"))

    # On the T4 the row-order kernel is DRAM-bound at large sizes and the
    # supertile order buys real throughput...
    t4 = results["T4"]
    assert any(e.bound == "dram" for e in t4["row"])
    for r_est, s_est in zip(t4["row"], t4["supertile"]):
        assert s_est.tflops >= r_est.tflops
    assert t4["supertile"][-1].tflops > 1.05 * t4["row"][-1].tflops
    # ...while the compute-bound RTX 2070 sees little change.
    r2070 = results["RTX2070"]
    for r_est, s_est in zip(r2070["row"], r2070["supertile"]):
        assert abs(s_est.tflops - r_est.tflops) / r_est.tflops < 0.10
