"""Fig. 5 -- padded vs naive shared-memory layout (RTX 2070).

Paper: "the naive layout slows the HGEMM by half compared with our
optimized data layout."  The mechanism is machine-checked in the
simulator: the naive stride leaves the LDS.32 fragment gathers 4-way
bank-conflicted, quadrupling their memory-IO occupancy.
"""

from conftest import SWEEP_SIZES, speedup_stats

from repro.core import ours
from repro.report import ascii_chart, format_series


def test_fig5_smem_layout(benchmark, pm2070):
    padded = ours()                    # stride 40 halves, conflict-free
    naive = ours(smem_pad_halves=0)    # stride 32 halves, 4-way LDS conflicts

    def sweep():
        return (
            [pm2070.estimate(padded, w, w, w).tflops for w in SWEEP_SIZES],
            [pm2070.estimate(naive, w, w, w).tflops for w in SWEEP_SIZES],
        )

    good, bad = benchmark(sweep)
    avg, peak, peak_w = speedup_stats(good, bad, SWEEP_SIZES)

    print()
    print(format_series(SWEEP_SIZES, {"padded": [round(v, 1) for v in good],
                                      "naive": [round(v, 1) for v in bad]}))
    print(ascii_chart(SWEEP_SIZES, {"padded": good, "naive": bad}))
    print(f"\npadded/naive speedup: avg {avg:.2f} (paper: ~2x, 'slows by half')")

    assert all(g > b for g, b in zip(good, bad))
    # "Slows by half": the padded layout is about twice as fast.
    assert 1.6 <= avg <= 2.4
