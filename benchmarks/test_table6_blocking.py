"""Table VI -- Tensor Core vs memory-IO pipe cycles per blocking size.

Paper values (cycles per CTA iteration, measured CPIs):

    (128x128x32)(64x64x8)   HMMA 1031  memory 1370
    (128x128x32)(128x64x8)  HMMA 1031  memory 1235
    (256x128x32)(64x64x8)   HMMA 2063  memory 2325
    (256x128x32)(128x64x8)  HMMA 2063  memory 2055
    (256x256x32)(64x64x8)   HMMA 4126  memory 3821
    (256x256x32)(128x64x8)  HMMA 4126  memory 3281
"""

import pytest

from repro.arch import RTX2070
from repro.core.blocking import choose_blocking, table6_rows
from repro.report import format_table

PAPER_ROWS = {
    ((128, 128, 32), (64, 64, 8)): (1031, 1370),
    ((128, 128, 32), (128, 64, 8)): (1031, 1235),
    ((256, 128, 32), (64, 64, 8)): (2063, 2325),
    ((256, 128, 32), (128, 64, 8)): (2063, 2055),
    ((256, 256, 32), (64, 64, 8)): (4126, 3821),
    ((256, 256, 32), (128, 64, 8)): (4126, 3281),
}


def test_table6_pipe_cycles(benchmark):
    rows = benchmark(table6_rows, RTX2070)

    printable = []
    for cta, warp, hmma, mem in rows:
        paper_hmma, paper_mem = PAPER_ROWS[(cta, warp)]
        printable.append((
            f"{cta[0]}x{cta[1]}x{cta[2]}", f"{warp[0]}x{warp[1]}x{warp[2]}",
            paper_hmma, round(hmma), paper_mem, round(mem),
        ))
    print()
    print(format_table(
        ["CTA tile", "warp tile", "HMMA paper", "HMMA ours",
         "memIO paper", "memIO ours"],
        printable, title="Table VI: cycles per iteration by blocking size"))

    for cta, warp, hmma, mem in rows:
        paper_hmma, paper_mem = PAPER_ROWS[(cta, warp)]
        assert hmma == pytest.approx(paper_hmma, abs=1.0)
        assert mem == pytest.approx(paper_mem, abs=1.0)

    # The model's conclusion is the paper's conclusion: 256x256x32 with
    # 128x64 warps is the best (most compute-bound) feasible blocking.
    best = choose_blocking(RTX2070)
    assert best.cta_tile == (256, 256, 32)
    assert best.warp_tile == (128, 64, 8)
