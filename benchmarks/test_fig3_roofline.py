"""Fig. 3 -- global-memory roofline on RTX 2070 and T4.

The paper's reading: a 128x128 CTA tile (intensity 64 FLOP/B) clears the
FP16-unit roof but leaves Tensor Cores memory-bound; 256x256 (intensity
128) nearly reaches the Tensor Core roof on the RTX 2070 and is still
DRAM-bound on the T4.
"""

from repro.analysis import Roofline
from repro.arch import RTX2070, T4
from repro.core import cublas_like, ours
from repro.report import ascii_chart, format_table


def test_fig3_roofline(benchmark):
    intensities = [2 ** i for i in range(2, 11)]

    def build():
        return {spec.name: Roofline(spec).series(intensities)
                for spec in (RTX2070, T4)}

    curves = benchmark(build)

    for spec in (RTX2070, T4):
        pts = curves[spec.name]
        print(f"\nFig. 3 -- roofline on {spec.name} "
              f"(DRAM {spec.dram_measured_gbps} GB/s):")
        print(ascii_chart(
            intensities,
            {"TensorCore": [p.tensor_tflops for p in pts],
             "FP16": [p.fp16_tflops for p in pts]},
            y_label="attainable TFLOPS",
        ))

    rows = []
    for spec in (RTX2070, T4):
        r = Roofline(spec)
        for cfg in (cublas_like(), ours()):
            p = r.evaluate_blocking(cfg)
            rows.append((spec.name, cfg.name, cfg.compute_intensity,
                         round(p.tensor_tflops, 1), p.memory_bound_tensor,
                         round(p.fp16_tflops, 1), p.memory_bound_fp16))
    print()
    print(format_table(
        ["device", "blocking", "intensity", "TC TFLOPS", "TC mem-bound",
         "FP16 TFLOPS", "FP16 mem-bound"],
        rows, title="Fig. 3 blocking-size markers"))

    # The paper's claims:
    r2070 = Roofline(RTX2070)
    assert not r2070.evaluate_blocking(cublas_like()).memory_bound_fp16
    assert r2070.evaluate_blocking(cublas_like()).memory_bound_tensor
    assert Roofline(T4).evaluate_blocking(ours()).memory_bound_tensor
