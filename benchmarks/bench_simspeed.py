"""Simulator speed benchmark: cold simulation vs warm cache.

Measures the wall time of profiling both paper kernels (``ours`` and
``cublas-like``) on the RTX 2070 model three ways:

* **cold** -- empty cache: every profile leg runs the cycle-level timing
  simulator;
* **warm disk** -- the in-process layer is dropped, so profiles reload
  from the on-disk store (what a fresh interpreter sees);
* **warm memory** -- everything hits the in-process layer.

Runs against a throwaway cache directory, never the user's real one, and
verifies that all three paths return identical profiles (the cache's core
invariant).  Results go to ``BENCH_simspeed.json`` in the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_simspeed.py
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path


def _profile_all(spec, configs):
    from repro.analysis import PerformanceModel

    pm = PerformanceModel(spec)
    start = time.perf_counter()
    profiles = [pm.sm_profile(c) for c in configs]
    return time.perf_counter() - start, profiles


def main() -> int:
    scratch = tempfile.mkdtemp(prefix="repro-simspeed-")
    os.environ["REPRO_CACHE_DIR"] = scratch
    os.environ.pop("REPRO_NO_CACHE", None)

    from repro.arch import RTX2070
    from repro.core import cublas_like, ours
    from repro.perf import PROFILE_CACHE, STATS

    configs = [ours(), cublas_like()]
    try:
        STATS.reset()
        cold_s, cold = _profile_all(RTX2070, configs)
        sim_stats = STATS.snapshot()

        PROFILE_CACHE.clear()  # drop the memory layer, keep the disk files
        disk_s, warm_disk = _profile_all(RTX2070, configs)

        mem_s, warm_mem = _profile_all(RTX2070, configs)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    if not (cold == warm_disk == warm_mem):
        print("FAIL: cached profiles differ from simulated ones", file=sys.stderr)
        return 1

    counters = sim_stats["counters"]
    sim_wall = sim_stats["timers"].get("sim.wall", 0.0)
    payload = {
        "device": RTX2070.name,
        "kernels": [c.name for c in configs],
        "cold_seconds": round(cold_s, 4),
        "warm_disk_seconds": round(disk_s, 4),
        "warm_memory_seconds": round(mem_s, 4),
        "warm_disk_speedup": round(cold_s / disk_s, 1) if disk_s else None,
        "warm_memory_speedup": round(cold_s / mem_s, 1) if mem_s else None,
        "simulated_cycles": counters.get("sim.cycles", 0),
        "simulated_instructions": counters.get("sim.instructions", 0),
        "simulator_runs": counters.get("sim.runs", 0),
        "simulated_cycles_per_sec": round(
            counters.get("sim.cycles", 0) / sim_wall) if sim_wall else None,
    }

    out = Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
