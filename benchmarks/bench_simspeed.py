"""Simulator speed benchmark: engine sweep + cold simulation vs warm cache.

Two families of legs, written to ``BENCH_simspeed.json`` in the repo root:

**Engine sweep** (no cache anywhere): both paper kernels (``ours`` and
``cublas-like``) at their true occupancy (CTAs/SM) across a k-depth ladder
-- the same composition ``PerformanceModel.sm_profile``/``sweep`` simulate
-- run directly through ``TimingSimulator`` on the ``reference`` and
``event`` engines.  Every per-run :class:`TimingResult` must compare equal
across engines (the event engine's core invariant) and the event engine
must finish the sweep at least 3x faster end-to-end.

**Fast-forward leg**: the deep-k end of the ladder -- the cublas-like
kernel at k=16384, where the main loop's steady state dominates -- run on
the event engine with steady-state fast-forward disabled
(``REPRO_TIMING_FF=0``) and enabled.  Both runs must produce equal
:class:`TimingResult` payloads and bit-identical memory images, and the
fast-forwarding run must finish at least 2x faster -- the gate for the
period-detection/replay layer actually paying for its bookkeeping.  The
same leg repeats on V100 (Volta, HMMA.884) so the gate covers a
non-Turing generation.

**Guard-sample leg**: the engine sweep re-run on the event engine with the
divergence watchdog in ``sample`` mode.  The watchdog's wall-clock budget
(``REPRO_GUARD_BUDGET``, default 5%) must keep the sweep's end-to-end
overhead within ``GUARD_OVERHEAD_MAX`` (10%), every guarded result must
equal its unguarded twin, and no divergence may fire.

**Cache ladder**: profiling both kernels three ways --

* **cold** -- empty cache: every profile leg runs the timing simulator;
* **warm disk** -- the in-process layer is dropped, so profiles reload
  from the on-disk store (what a fresh interpreter sees);
* **warm memory** -- everything hits the in-process layer.

Runs against a throwaway cache directory, never the user's real one, and
verifies that all three paths return identical profiles.

Usage::

    PYTHONPATH=src python benchmarks/bench_simspeed.py
"""

from __future__ import annotations

import gc
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

#: k depths of the engine-sweep leg.  Matches the range the figure sweeps
#: exercise (profile legs at small k, long-k estimates amortising them).
SWEEP_KS = (64, 128, 256, 512)

#: Required end-to-end event-over-reference speedup on the sweep leg.
EVENT_SPEEDUP_TARGET = 3.0

#: k depth of the fast-forward leg: deep enough that the k-loop steady
#: state dominates the run (the figure sweeps' long-k estimates).
FF_K = 16384

#: Required fast-forward-over-exact speedup on the deep-k leg.
FF_SPEEDUP_TARGET = 2.0

#: Maximum tolerated end-to-end overhead of the sample-mode watchdog on
#: the event sweep (the budget sampler targets 5%; 10% leaves noise room).
GUARD_OVERHEAD_MAX = 0.10


def _ff_leg(spec, prefix=""):
    """Time the event engine with and without steady-state fast-forward on
    the deep-k leg; returns a payload fragment with the identity verdict.
    The kernel config is adapted to *spec*'s generation, so the same leg
    runs on non-Turing devices (``prefix`` keeps their keys apart)."""
    from repro.core import cublas_like
    from repro.core.builder import HgemmProblem, build_hgemm
    from repro.core.config import adapt_for_arch
    from repro.perf import STATS
    from repro.sim.memory import GlobalMemory
    from repro.sim.timing import TimingSimulator

    config = adapt_for_arch(cublas_like(), spec.arch)
    problem = HgemmProblem(m=config.b_m, n=config.b_n, k=FF_K,
                           a_addr=0, b_addr=16 << 20, c_addr=32 << 20)
    program = build_hgemm(config, problem, spec)

    # Interleaved best-of-3 pairs: shared-box wall clocks swing enough
    # between runs that a single (exact, fast-forward) pair measures the
    # tenant next door as much as the replay layer.  The simulator is
    # deterministic, so the identity verdict holds for every pair alike.
    runs = {}
    for _ in range(3):
        for name, flag in (("exact", "0"), ("fast_forward", "1")):
            os.environ["REPRO_TIMING_FF"] = flag
            try:
                STATS.counters.pop("sim.ff_periods", None)
                STATS.counters.pop("sim.ff_cycles", None)
                sim = TimingSimulator(spec, engine="event")
                memory = GlobalMemory(40 << 20)
                # Garbage left by the earlier sweep legs otherwise bleeds
                # into the wall-clock pair and flattens the ratio.
                gc.collect()
                start = time.perf_counter()
                result = sim.run(program, memory, num_ctas=1)
                wall = time.perf_counter() - start
            finally:
                os.environ.pop("REPRO_TIMING_FF", None)
            best = runs.get(name)
            wall = wall if best is None else min(wall, best[0])
            runs[name] = (wall, result, memory._words,
                          STATS.counters.get("sim.ff_periods", 0),
                          STATS.counters.get("sim.ff_cycles", 0))

    import numpy as np

    exact, ff = runs["exact"], runs["fast_forward"]
    identical = exact[1] == ff[1] and np.array_equal(exact[2], ff[2])
    return {
        f"{prefix}ff_leg": f"{spec.name}/{config.name}/k{FF_K}/ctas1",
        f"{prefix}ff_exact_seconds": round(exact[0], 4),
        f"{prefix}ff_seconds": round(ff[0], 4),
        f"{prefix}ff_speedup": round(exact[0] / ff[0], 2) if ff[0] else None,
        f"{prefix}ff_periods": ff[3],
        f"{prefix}ff_cycles_skipped": ff[4],
        f"{prefix}ff_total_cycles": ff[1].cycles,
        f"{prefix}ff_bit_identical": identical,
    }


def _build_legs(spec):
    """The sweep composition: both kernels at true occupancy across k."""
    from repro.analysis import PerformanceModel
    from repro.core import cublas_like, ours
    from repro.core.builder import HgemmProblem, build_hgemm

    pm = PerformanceModel(spec)
    legs = []
    for config in (ours(), cublas_like()):
        ctas = pm.ctas_per_sm(config)
        for k in SWEEP_KS:
            problem = HgemmProblem(m=config.b_m, n=config.b_n, k=k,
                                   a_addr=0, b_addr=4 << 20, c_addr=8 << 20)
            program = build_hgemm(config, problem, spec)
            legs.append((f"{config.name}/k{k}/ctas{ctas}", ctas, program))
    return legs


def _engine_sweep(spec, legs):
    """Time both engines over the sweep; returns (times, identical, runs)."""
    from repro.sim.memory import GlobalMemory
    from repro.sim.timing import TimingSimulator

    times, results = {}, {}
    for engine in ("reference", "event"):
        total = 0.0
        out = []
        for _label, ctas, program in legs:
            sim = TimingSimulator(spec, engine=engine)
            memory = GlobalMemory(16 << 20)
            start = time.perf_counter()
            out.append(sim.run(program, memory, num_ctas=ctas))
            total += time.perf_counter() - start
        times[engine] = total
        results[engine] = out
    identical = all(
        ref == evt for ref, evt in zip(results["reference"], results["event"])
    )
    return times, identical, [label for label, _, _ in legs]


def _guard_leg(spec, legs):
    """Re-time the event sweep with the sample-mode watchdog engaged.

    The budget sampler only spends reference re-runs it can afford, so the
    guarded sweep must land within ``GUARD_OVERHEAD_MAX`` of the unguarded
    one while producing equal results and zero divergences.

    Both legs take the best of three runs, and the unguarded/guarded
    pairs are interleaved: single-shot wall times on a shared CI box are
    noisy enough that the guarded leg used to beat the unguarded one
    outright and report a (meaningless) negative overhead, and a slow
    monotonic drift (another tenant ramping up) used to land entirely on
    whichever leg ran second.  The overhead is clamped at zero -- the
    watchdog cannot make the simulator faster, and a negative readout
    only advertises jitter.
    """
    from repro.perf import STATS
    from repro.robust import guard
    from repro.sim.memory import GlobalMemory
    from repro.sim.timing import TimingSimulator

    def sweep(guard_mode):
        guard.reset()
        out = []
        gc.collect()
        start = time.perf_counter()
        for _label, ctas, program in legs:
            sim = TimingSimulator(spec, engine="event", guard=guard_mode)
            out.append(sim.run(program, GlobalMemory(16 << 20), num_ctas=ctas))
        return time.perf_counter() - start, out

    checks0 = STATS.counters.get("guard.checks", 0)
    div0 = STATS.counters.get("guard.divergences", 0)
    base_runs, guard_runs = [], []
    for _ in range(3):
        base_runs.append(sweep("off"))
        guard_runs.append(sweep("sample"))
    base_s, base = min(s for s, _ in base_runs), base_runs[-1][1]
    guard_s, guarded = min(s for s, _ in guard_runs), guard_runs[-1][1]
    # Counter deltas span all three guarded runs; normalise to one sweep.
    checks = (STATS.counters.get("guard.checks", 0) - checks0) // 3
    divergences = STATS.counters.get("guard.divergences", 0) - div0
    guard.reset()

    overhead = max(0.0, guard_s / base_s - 1.0) if base_s else 0.0
    return {
        "guard_baseline_seconds": round(base_s, 4),
        "guard_sample_seconds": round(guard_s, 4),
        "guard_overhead": round(overhead, 4),
        "guard_checks": checks,
        "guard_divergences": divergences,
        "guard_results_identical": all(
            a == b for a, b in zip(base, guarded)),
    }


def _profile_all(spec, configs):
    from repro.analysis import PerformanceModel

    pm = PerformanceModel(spec)
    start = time.perf_counter()
    profiles = [pm.sm_profile(c) for c in configs]
    return time.perf_counter() - start, profiles


def main() -> int:
    scratch = tempfile.mkdtemp(prefix="repro-simspeed-")
    os.environ["REPRO_CACHE_DIR"] = scratch
    os.environ.pop("REPRO_NO_CACHE", None)

    from repro.arch import RTX2070
    from repro.arch.turing import V100
    from repro.core import cublas_like, ours
    from repro.perf import PROFILE_CACHE, STATS

    configs = [ours(), cublas_like()]
    try:
        legs = _build_legs(RTX2070)
        engine_times, engines_identical, sweep_legs = _engine_sweep(
            RTX2070, legs)
        ff_payload = _ff_leg(RTX2070)
        # Same fast-forward gate on a non-Turing device: the period
        # detector must hold for Volta's HMMA.884 main loop too.
        ff_v100_payload = _ff_leg(V100, prefix="v100_")
        guard_payload = _guard_leg(RTX2070, legs)

        STATS.reset()
        cold_s, cold = _profile_all(RTX2070, configs)
        sim_stats = STATS.snapshot()

        PROFILE_CACHE.clear()  # drop the memory layer, keep the disk files
        disk_s, warm_disk = _profile_all(RTX2070, configs)

        mem_s, warm_mem = _profile_all(RTX2070, configs)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    if not engines_identical:
        print("FAIL: event engine results differ from reference",
              file=sys.stderr)
        return 1
    if not ff_payload["ff_bit_identical"]:
        print("FAIL: fast-forward leg differs from exact event simulation",
              file=sys.stderr)
        return 1
    if not ff_v100_payload["v100_ff_bit_identical"]:
        print("FAIL: V100 fast-forward leg differs from exact event "
              "simulation", file=sys.stderr)
        return 1
    if not (cold == warm_disk == warm_mem):
        print("FAIL: cached profiles differ from simulated ones", file=sys.stderr)
        return 1
    if not guard_payload["guard_results_identical"]:
        print("FAIL: guarded sweep results differ from unguarded ones",
              file=sys.stderr)
        return 1
    if guard_payload["guard_divergences"]:
        print("FAIL: watchdog reported divergences on a clean sweep",
              file=sys.stderr)
        return 1

    ref_s, evt_s = engine_times["reference"], engine_times["event"]
    event_speedup = ref_s / evt_s if evt_s else None
    counters = sim_stats["counters"]
    sim_wall = sim_stats["timers"].get("sim.wall", 0.0)
    payload = {
        "device": RTX2070.name,
        "kernels": [c.name for c in configs],
        "sweep_legs": sweep_legs,
        "reference_engine_seconds": round(ref_s, 4),
        "event_engine_seconds": round(evt_s, 4),
        "event_engine_speedup": round(event_speedup, 2) if event_speedup else None,
        "engines_bit_identical": engines_identical,
        **ff_payload,
        **ff_v100_payload,
        **guard_payload,
        "cold_seconds": round(cold_s, 4),
        "warm_disk_seconds": round(disk_s, 4),
        "warm_memory_seconds": round(mem_s, 4),
        "warm_disk_speedup": round(cold_s / disk_s, 1) if disk_s else None,
        "warm_memory_speedup": round(cold_s / mem_s, 1) if mem_s else None,
        "simulated_cycles": counters.get("sim.cycles", 0),
        "simulated_instructions": counters.get("sim.instructions", 0),
        "simulator_runs": counters.get("sim.runs", 0),
        "simulated_cycles_per_sec": round(
            counters.get("sim.cycles", 0) / sim_wall) if sim_wall else None,
    }

    out = Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    if (event_speedup or 0.0) < EVENT_SPEEDUP_TARGET:
        print(f"FAIL: event engine only {event_speedup:.2f}x over reference "
              f"(< {EVENT_SPEEDUP_TARGET}x target)", file=sys.stderr)
        return 1
    if (ff_payload["ff_speedup"] or 0.0) < FF_SPEEDUP_TARGET:
        print(f"FAIL: fast-forward only {ff_payload['ff_speedup']}x over "
              f"exact event simulation (< {FF_SPEEDUP_TARGET}x target)",
              file=sys.stderr)
        return 1
    if (ff_v100_payload["v100_ff_speedup"] or 0.0) < FF_SPEEDUP_TARGET:
        print(f"FAIL: V100 fast-forward only "
              f"{ff_v100_payload['v100_ff_speedup']}x over exact event "
              f"simulation (< {FF_SPEEDUP_TARGET}x target)", file=sys.stderr)
        return 1
    if guard_payload["guard_overhead"] > GUARD_OVERHEAD_MAX:
        print(f"FAIL: sample-mode watchdog overhead "
              f"{guard_payload['guard_overhead']:.1%} exceeds "
              f"{GUARD_OVERHEAD_MAX:.0%} budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
