#!/usr/bin/env python
"""Demystify the Tensor Core, exactly as the paper's Section IV does.

Reproduces, on the simulated device:
  * Fig. 1  -- the row/column-major 8x8 fragment lane maps;
  * Fig. 2  -- the HMMA.1688 operand layouts, proven executable;
  * Table I -- HMMA CPI (loop microbenchmark) and the 10/14-cycle
               result latencies (stall-varying probe).

Run:  python examples/demystify_tensor_core.py
"""

import numpy as np

from repro import RTX2070
from repro.bench import measure_hmma_cpi, measure_hmma_latency, probe_hmma_half
from repro.hmma import (
    COL_MAJOR,
    ROW_MAJOR,
    fragments_to_matrix16x8,
    hmma_operand_layouts,
    lane_map,
    matrix16x8_to_fragments,
    matrix_to_fragment,
    mma,
)


def show_layouts() -> None:
    print("=" * 64)
    print("Fig. 1: one 8x8 half matrix in one 32-bit 'warp register'")
    print("=" * 64)
    print("row-major (each cell: lane id, holding 2 adjacent halves):")
    print(lane_map(ROW_MAJOR).render())
    print("\ncolumn-major:")
    print(lane_map(COL_MAJOR).render())

    print("\n" + "=" * 64)
    print("Fig. 2: HMMA.1688.F16 R0, R2, R6, R4 operand layouts")
    print("=" * 64)
    for name, (shape, order, regs) in hmma_operand_layouts().items():
        print(f"  {name}: {shape[0]}x{shape[1]} matrix, {order}-major, "
              f"{regs} warp register(s)")


def prove_executable() -> None:
    rng = np.random.default_rng(7)
    a = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
    b = rng.uniform(-1, 1, (8, 8)).astype(np.float16)
    c = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
    d_regs = mma.hmma_1688_f16(
        matrix16x8_to_fragments(a),
        matrix_to_fragment(b, COL_MAJOR),
        matrix16x8_to_fragments(c),
    )
    d = fragments_to_matrix16x8(d_regs)
    expected = (a.astype(np.float32) @ b.astype(np.float32)
                + c.astype(np.float32)).astype(np.float16)
    assert np.array_equal(d, expected)
    print("\nscatter -> HMMA -> gather reproduces A@B + C bit-exactly: OK")


def benchmark_tensor_core() -> None:
    print("\n" + "=" * 64)
    print("Table I: throughput and latency of HMMA.1688.F16")
    print("=" * 64)
    cpi = measure_hmma_cpi(RTX2070)
    print(f"CPI: theoretical 8.00, paper measured 8.06, "
          f"our SASS loop measures {cpi.cpi:.2f} "
          f"({cpi.instructions} HMMAs in {cpi.cycles} cycles)")

    print("\nLatency probe (vary the stall, check result correctness):")
    for stall in (8, 9, 10, 13, 14):
        first = probe_hmma_half(RTX2070, stall, half=0)
        second = probe_hmma_half(RTX2070, stall, half=1)
        print(f"  stall={stall:2d}: first half "
              f"{'CORRECT' if first else 'stale  '}   second half "
              f"{'CORRECT' if second else 'stale'}")
    latency = measure_hmma_latency(RTX2070)
    print(f"=> first half of D ready after {latency.first_half} cycles, "
          f"second after {latency.second_half} (paper: 10 / 14)")


def demystify_integer_path() -> None:
    print("\n" + "=" * 64)
    print("Future work: the integer Tensor Core path (IMMA.8816.S8.S8)")
    print("=" * 64)
    from repro.bench import measure_imma_cpi
    from repro.hmma import (
        fragments_to_s32_matrix,
        imma_8816,
        int8_matrix_to_fragment_a,
        int8_matrix_to_fragment_b,
        s32_matrix_to_fragments,
    )

    rng = np.random.default_rng(1)
    a = rng.integers(-128, 128, (8, 16), dtype=np.int8)
    b = rng.integers(-128, 128, (16, 8), dtype=np.int8)
    d = fragments_to_s32_matrix(imma_8816(
        int8_matrix_to_fragment_a(a),
        int8_matrix_to_fragment_b(b),
        s32_matrix_to_fragments(np.zeros((8, 8), np.int32)),
    ))
    assert np.array_equal(d, (a.astype(np.int64) @ b.astype(np.int64))
                          .astype(np.int32))
    print("D[8x8,s32] = A[8x16,s8] @ B[16x8,s8]: exact integer result OK")
    cpi = measure_imma_cpi(RTX2070)
    print(f"IMMA.8816 CPI: {cpi.cpi:.2f} (half of HMMA's 8.06 -- the INT8 "
          "path runs at twice the FP16 rate)")


def main() -> None:
    show_layouts()
    prove_executable()
    benchmark_tensor_core()
    demystify_integer_path()
    print("\nOK")


if __name__ == "__main__":
    main()
