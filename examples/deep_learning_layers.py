#!/usr/bin/env python
"""The paper's motivating workloads: GEMMs from deep-learning layers.

Section I motivates HGEMM with fully-connected layers, convolutions
lowered to GEMM, LSTM cells and BERT's transformer blocks.  Those layers
are now a first-class subsystem -- :mod:`repro.workloads` -- and this
example is a thin tour of it:

* run the ``layers`` suite functionally (small shapes, every member
  bit-exact against the precision model);
* estimate the production shapes through the device performance model
  with shape-aware tile selection.

``repro workloads run|estimate --suite layers`` does the same from the
command line.

Run:  python examples/deep_learning_layers.py
"""

from repro import RTX2070
from repro.analysis import sweep_suite
from repro.workloads import get_suite, run_suite
from repro.workloads.suite import format_estimates

#: Production-scale layer GEMMs -- the registry's "layers" suite.
LAYER_SHAPES = [
    (p.name, p.m, p.n, p.k) for p in get_suite("layers").problems("full")
]


def functional_check() -> None:
    print("Functional check (scaled-down layers, full simulator):")
    result = run_suite("layers", spec=RTX2070, scale="sim")
    for r in result.results:
        print(f"  {r.workload}: {r.shape} -> bit-exact {r.exact}")
    assert result.passed, result.summary()


def predicted_layer_performance() -> None:
    # A real library keeps a kernel family and picks per shape: the big
    # 256x256 tile maximises intensity, the 128x128 variant fills more SMs
    # on small/skinny layers (this is exactly cuBLAS's own trade, Table
    # VII).  sweep_suite runs that selection over the whole suite.
    rows = sweep_suite("layers", RTX2070, scale="full")
    print()
    print(format_estimates(rows, RTX2070,
                           title="Predicted layer GEMM performance on "
                                 "RTX 2070 (shape-aware tile selection)"))


def main() -> None:
    functional_check()
    predicted_layer_performance()
    print()
    print("Note: the paper's kernel is tuned for large matrices ('Tensor")
    print("Cores are targeting large matrices', Section VII); on small or")
    print("skinny layers the baseline's 128x128x64 configuration can win --")
    print("shape-aware kernel selection is what a production library adds.")
    print("\nOK")


if __name__ == "__main__":
    main()
