#!/usr/bin/env python
"""The paper's motivating workloads: GEMMs from deep-learning layers.

Section I motivates HGEMM with fully-connected layers, convolutions
lowered to GEMM, LSTM cells and BERT's transformer blocks.  This example
runs representative layer shapes through both kernels:

* functionally (small shapes, bit-exact against the precision model);
* through the device performance model (production shapes, predicted
  TFLOPS for both kernels on the RTX 2070).

Run:  python examples/deep_learning_layers.py
"""

import numpy as np

from repro import PerformanceModel, RTX2070, cublas_like, hgemm, hgemm_reference, ours
from repro.report import format_table

#: Production-scale layer GEMMs (m, n, k) -- all multiples of the tiles.
LAYER_SHAPES = [
    ("BERT-large QKV projection (seq 512)", 512, 3072, 1024),
    ("BERT-large FFN up (seq 512)", 512, 4096, 1024),
    ("BERT-large FFN down (seq 512)", 512, 1024, 4096),
    ("LSTM cell, hidden 1024, batch 256", 256, 4096, 2048),
    ("ResNet conv3x3 as GEMM (56x56x256)", 3136, 256, 2304),
    ("classifier FC, batch 1024", 1024, 1024, 4096),
]


def functional_check() -> None:
    print("Functional check (scaled-down layers, full simulator):")
    rng = np.random.default_rng(0)
    shapes = [("FC layer", 128, 256, 64), ("attention score", 64, 64, 64),
              ("LSTM gates", 64, 256, 128)]
    for name, m, n, k in shapes:
        a = rng.normal(0, 0.5, (m, k)).astype(np.float16)
        b = rng.normal(0, 0.5, (k, n)).astype(np.float16)
        c = hgemm(a, b)
        exact = np.array_equal(c, hgemm_reference(a, b))
        print(f"  {name}: {m}x{n}x{k} -> bit-exact {exact}")
        assert exact


def predicted_layer_performance() -> None:
    pm = PerformanceModel(RTX2070)
    # A real library keeps a kernel family and picks per shape: the big
    # 256x256 tile maximises intensity, the 128x128 variant fills more SMs
    # on small/skinny layers (this is exactly cuBLAS's own trade, Table
    # VII).  The analytical model does the selection.
    family = {
        "256x256": ours(),
        "128x128": ours(b_m=128, b_n=128, w_m=64, w_n=64, name="ours-small"),
    }
    rows = []
    for name, m, n, k in LAYER_SHAPES:
        candidates = {
            label: pm.estimate(cfg, m, n, k) for label, cfg in family.items()
        }
        label = max(candidates, key=lambda key: candidates[key].tflops)
        o = candidates[label]
        c = pm.estimate(cublas_like(), m, n, k, baseline_quirks=True)
        rows.append((name, f"{m}x{n}x{k}", label, round(o.tflops, 1),
                     round(c.tflops, 1), round(o.tflops / c.tflops, 2),
                     o.bound))
    print()
    print(format_table(
        ["layer", "GEMM", "tile", "ours TFLOPS", "cuBLAS TFLOPS",
         "speedup", "bound"],
        rows, title="Predicted layer GEMM performance on RTX 2070 "
                    "(shape-aware tile selection)"))


def main() -> None:
    functional_check()
    predicted_layer_performance()
    print()
    print("Note: the paper's kernel is tuned for large matrices ('Tensor")
    print("Cores are targeting large matrices', Section VII); on small or")
    print("skinny layers the baseline's 128x128x64 configuration can win --")
    print("shape-aware kernel selection is what a production library adds.")
    print("\nOK")


if __name__ == "__main__":
    main()
