#!/usr/bin/env python
"""Autotune a kernel configuration (the paper's last future-work item).

The tuner mechanises Section VI: it enumerates the blocking space, prunes
with the Eq. 3-5 pipe model + roofline, then ranks finalists by running
their *generated kernels* on the cycle-level simulator inside the wave
model.  Register-infeasible corners (the paper's 128x128-warp argument)
come out as explicit rejections.

Run:  python examples/autotune_kernel.py          (takes a few minutes)
"""

from repro import PerformanceModel, RTX2070, T4, ours
from repro.analysis import autotune


def tune(spec, m, n, k, model) -> None:
    print("=" * 72)
    print(f"autotuning {m}x{n}x{k} on {spec.name}")
    print("=" * 72)
    result = autotune(spec, m, n, k, model=model)
    print(result.summary())
    paper = model.estimate(ours(), m, n, k)
    print(f"\npaper's hand-tuned kernel: {paper.tflops:.1f} TFLOPS "
          f"({paper.bound}-bound)")
    ratio = result.best_tflops / paper.tflops
    print(f"tuner vs paper: {ratio:.3f}x")
    print()


def main() -> None:
    pm2070 = PerformanceModel(RTX2070)
    pm_t4 = PerformanceModel(T4)
    # The paper's headline regime: large square matrices.
    tune(RTX2070, 8192, 8192, 8192, pm2070)
    # The DRAM-starved device: robustness matters more than occupancy.
    tune(T4, 16384, 16384, 16384, pm_t4)
    # A skinny deep-learning layer: small tiles win on utilization.
    tune(RTX2070, 512, 4096, 1024, pm2070)
    print("OK")


if __name__ == "__main__":
    main()
