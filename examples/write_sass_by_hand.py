#!/usr/bin/env python
"""Program the simulated GPU in raw SASS, turingas-style.

Shows the assembler layer directly: a hand-written kernel that transposes
8x8 half tiles through shared memory using the Tensor Core identity trick
(scatter row-major, gather column-major), assembled from text, encoded to
a 128-bit binary image and round-tripped, then executed on both
simulators.

Run:  python examples/write_sass_by_hand.py
"""

import numpy as np

from repro import RTX2070
from repro.hmma import ROW_MAJOR, COL_MAJOR, fragment_to_matrix, matrix_to_fragment
from repro.isa import assemble, decode_program, encode_program
from repro.sim import FunctionalSimulator, GlobalMemory, TimingSimulator

# One warp loads an 8x8 half tile as a row-major fragment (one 32-bit word
# per lane), stores it to shared, reloads with the column-major lane
# pattern, and writes the transposed fragment out.
SOURCE = """
.kernel fragment_roundtrip
.regs 24
.block 32
.smem 256

  S2R R1, SR_TID.X {stall=6}
  IMAD R2, R1, 4, 0x1000 {stall=6}       // in[lane]
  LDG.E.32 R3, [R2] {stall=1, wb=0}
  IMAD R4, R1, 4, RZ {stall=6}           // smem word slot = lane
  STS [R4], R3 {wait=0b1, stall=2}
  BAR.SYNC {stall=1}
  LDS R7, [R4] {stall=1, wb=1}
  IMAD R8, R1, 4, 0x2000 {stall=6}
  STG.E.32 [R8], R7 {wait=0b10, stall=4}
  EXIT
"""


def main() -> None:
    program = assemble(SOURCE)
    print(f"assembled {len(program)} instructions:")
    print(program.listing())

    blob = encode_program(program)
    print(f"\nencoded to {len(blob)} bytes "
          f"({len(blob) // len(program)} per instruction)")
    decoded = decode_program(blob)
    assert [str(i.opcode) for i in decoded] == [str(i.opcode) for i in program]
    print("binary round-trip: OK")

    rng = np.random.default_rng(1)
    tile = rng.uniform(-1, 1, (8, 8)).astype(np.float16)
    memory = GlobalMemory(1 << 16)
    memory.write_array(0x1000, matrix_to_fragment(tile, ROW_MAJOR))

    FunctionalSimulator().run(program, memory)
    out_words = memory.read_array(0x2000, np.uint32, 32)
    # The words survive the shared-memory round trip bit-exactly...
    got_row = fragment_to_matrix(out_words, ROW_MAJOR)
    np.testing.assert_array_equal(got_row, tile)
    # ...and the paper's Fig. 1 duality: gathering a row-major-scattered
    # fragment with the column-major map yields the transpose for free.
    got_col = fragment_to_matrix(out_words, COL_MAJOR)
    np.testing.assert_array_equal(got_col, tile.T)
    print("functional run: fragment round-trip + free transpose OK")

    result = TimingSimulator(RTX2070).run(program, GlobalMemory(1 << 16))
    print(f"timed run: {result.cycles} cycles, "
          f"{result.instructions} instructions issued, "
          f"LSU busy {result.pipe_busy['lsu']:.1f} cycles")
    print("\nOK")


if __name__ == "__main__":
    main()
