#!/usr/bin/env python
"""Microbenchmark the memory system, as the paper's Section V does.

Reproduces Tables II-V on the simulated devices, plus the fine-grained
pointer chase (Mei & Chu) detecting the L1 capacity.

Run:  python examples/microbenchmark_memory.py
"""

from repro import RTX2070, T4
from repro.bench import (
    detect_l1_capacity,
    measure_dram_bandwidth,
    measure_l2_bandwidth,
    measure_ldg_cpi,
    measure_lds_cpi,
    measure_sts_cpi,
    pointer_chase,
    smem_throughput_bytes_per_cycle,
)
from repro.report import format_table


def table2() -> None:
    rows = []
    for spec in (RTX2070, T4):
        dram = measure_dram_bandwidth(spec)
        l2 = measure_l2_bandwidth(spec)
        rows.append((spec.name, spec.dram_peak_gbps, round(dram.gbps, 1),
                     round(l2.gbps, 1), round(spec.tensor_peak_tflops, 1)))
    print(format_table(
        ["device", "DRAM peak GB/s", "DRAM measured", "L2 measured",
         "TC peak TFLOPS"],
        rows, title="Table II: memory bandwidth (paper: 380/750 and 238/910)"))


def table3() -> None:
    rows = []
    for level in ("l1", "l2"):
        row = [f"LDG (data in {level.upper()})"]
        for width in (32, 64, 128):
            row.append(round(measure_ldg_cpi(RTX2070, width, level).cpi, 2))
        rows.append(tuple(row))
    print()
    print(format_table(["Type", "32", "64", "128"], rows,
                       title="Table III: CPI of LDG"))


def tables4_5() -> None:
    cpi_rows, tput_rows = [], []
    for op, fn in (("LDS", measure_lds_cpi), ("STS", measure_sts_cpi)):
        cpis, tputs = [op], [op]
        for width in (32, 64, 128):
            result = fn(RTX2070, width)
            cpis.append(round(result.cpi, 2))
            tputs.append(round(smem_throughput_bytes_per_cycle(result, width), 2))
        cpi_rows.append(tuple(cpis))
        tput_rows.append(tuple(tputs))
    print()
    print(format_table(["Type", "32", "64", "128"], cpi_rows,
                       title="Table IV: CPI of shared memory instructions"))
    print()
    print(format_table(["Type", "32", "64", "128"], tput_rows,
                       title="Table V: shared memory throughput (bytes/cycle)"))


def pchase() -> None:
    print("\nFine-grained pointer chase (Mei & Chu, in SASS):")
    for footprint_kb in (8, 16, 32, 48, 64):
        result = pointer_chase(RTX2070, footprint_kb << 10)
        print(f"  footprint {footprint_kb:3d} KB: "
              f"{result.cycles_per_hop:6.1f} cycles/hop")
    capacity = detect_l1_capacity(RTX2070)
    print(f"=> detected L1 capacity: {capacity >> 10} KB")


def main() -> None:
    table2()
    table3()
    tables4_5()
    pchase()
    print("\nOK")


if __name__ == "__main__":
    main()
