#!/usr/bin/env python
"""Walk through the paper's blocking-size analysis (Section VI-A).

1. Fig. 3 -- the roofline shows why Tensor Cores turn HGEMM memory-bound;
2. Table VI -- CPI-based pipe-cycle accounting for six blockings;
3. Eq. (6) -- the STS interleave rule;
4. the final selection, identical to the paper's kernel.

Run:  python examples/choose_blocking.py
"""

from repro import RTX2070, T4
from repro.analysis import Roofline
from repro.core import cublas_like, ours
from repro.core.blocking import (
    choose_blocking,
    min_hmma_between_sts,
    table6_rows,
)
from repro.report import format_table


def roofline_story() -> None:
    print("=" * 68)
    print("Step 1: the roofline (Fig. 3)")
    print("=" * 68)
    for spec in (RTX2070, T4):
        r = Roofline(spec)
        rows = []
        for cfg in (cublas_like(), ours()):
            p = r.evaluate_blocking(cfg)
            rows.append((cfg.name, f"{cfg.b_m}x{cfg.b_n}",
                         cfg.compute_intensity,
                         round(p.fp16_tflops, 1),
                         "yes" if p.memory_bound_fp16 else "no",
                         round(p.tensor_tflops, 1),
                         "yes" if p.memory_bound_tensor else "no"))
        print(format_table(
            ["kernel", "tile", "FLOP/B", "FP16 TFLOPS", "FP16 bound?",
             "TC TFLOPS", "TC bound?"],
            rows, title=f"{spec.name} (DRAM {spec.dram_measured_gbps} GB/s, "
                        f"TC peak {spec.tensor_peak_tflops:.1f} TFLOPS)"))
        print()
    print("Reading: with FP16 units a 128x128 tile already clears the roof;")
    print("Tensor Cores are 4x faster, so the same tile leaves them starved.")


def table6_story() -> None:
    print("\n" + "=" * 68)
    print("Step 2: pipe-cycle accounting (Table VI, Eqs. 3-5)")
    print("=" * 68)
    rows = []
    for cta, warp, hmma, mem in table6_rows(RTX2070):
        verdict = "Tensor-bound (good)" if hmma >= mem else "memory-bound"
        rows.append((f"{cta[0]}x{cta[1]}x{cta[2]}",
                     f"{warp[0]}x{warp[1]}x{warp[2]}",
                     round(hmma), round(mem), verdict))
    print(format_table(
        ["CTA tile", "warp tile", "HMMA cycles", "memory-IO cycles", ""],
        rows))


def schedule_story() -> None:
    print("\n" + "=" * 68)
    print("Step 3: instruction scheduling (Eq. 6)")
    print("=" * 68)
    for width in (32, 64, 128):
        spacing = min_hmma_between_sts(RTX2070, width)
        print(f"  STS.{width:<3d} needs >= {spacing} HMMAs of cover "
              f"(4 blocks x CPI_STS / CPI_HMMA)")
    print("  cuBLAS 10.1 interleaves STS.128 with only 2 HMMAs -- 'not "
          "enough' (Fig. 4).")


def final_choice() -> None:
    print("\n" + "=" * 68)
    print("Step 4: the selection")
    print("=" * 68)
    best = choose_blocking(RTX2070)
    print(f"chosen: {best.describe()}")
    assert best.cta_tile == (256, 256, 32)
    assert best.warp_tile == (128, 64, 8)
    print("identical to the paper's kernel (Table VII).")


def main() -> None:
    roofline_story()
    table6_story()
    schedule_story()
    final_choice()
    print("\nOK")


if __name__ == "__main__":
    main()
