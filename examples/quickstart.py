#!/usr/bin/env python
"""Quickstart: run a half-precision GEMM on the simulated Turing GPU.

The matrices go through the full stack: the kernel generator emits the
SASS program, the functional simulator executes it warp by warp (with the
real HMMA fragment layouts and FP16 accumulator rounding), and the result
comes back bit-exact against the Tensor Core precision model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import hgemm, hgemm_reference, ours
from repro.core.builder import HgemmProblem, build_hgemm


def main() -> None:
    rng = np.random.default_rng(0)
    m, n, k = 256, 512, 128
    a = rng.uniform(-1, 1, (m, k)).astype(np.float16)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float16)

    print(f"C[{m}x{n}] = A[{m}x{k}] @ B[{k}x{n}], half precision")

    # max_workers shards the grid's CTAs over worker processes (0 = one
    # per CPU) -- bit-identical to the serial run, just faster on big grids.
    run = hgemm(a, b, return_run=True, max_workers=0)
    c = run.c
    print(f"kernel: {run.config.describe()}")
    print(f"executed {run.stats.instructions_retired} instructions "
          f"({run.stats.opcode_counts.get('HMMA', 0)} HMMA) over "
          f"{run.stats.ctas_run} CTAs")

    reference = hgemm_reference(a, b)
    exact = np.array_equal(c, reference)
    print(f"bit-exact vs the Tensor Core precision model: {exact}")

    # The FP16-accumulator error vs a float32 GEMM is small but non-zero:
    f32 = a.astype(np.float32) @ b.astype(np.float32)
    err = np.abs(c.astype(np.float32) - f32).max()
    print(f"max |C - float32 reference| = {err:.4f} "
          "(FP16 accumulation, paper Section IV)")

    # Peek at the generated SASS.
    program = build_hgemm(ours(), HgemmProblem(256, 256, 64, 0, 1 << 22, 1 << 23))
    print(f"\nGenerated kernel: {len(program)} instructions, "
          f"{program.meta.num_regs} registers/thread, "
          f"{program.meta.smem_bytes // 1024} KB shared memory")
    print("first instructions of the main loop:")
    start = program.labels["KLOOP"]
    for index in range(start, start + 8):
        print(f"  /*{index:04d}*/ {program[index]}")

    if not exact:
        raise SystemExit("FAILED: result mismatch")
    print("\nOK")


if __name__ == "__main__":
    main()
